"""Experiment harness: multi-trial recovery evaluation and sweeps.

This is the layer the benchmarks and CLI sit on.  One call to
:func:`evaluate_recovery` reproduces one cell of the paper's figures:
it runs ``trials`` independent poisoning rounds, applies every recovery
method under evaluation (before-recovery, LDPRecover, LDPRecover*,
Detection) and averages the metrics — exactly the paper's protocol of
averaging MSE/FG over 10 trials (Section VI-B).

Execution is delegated to :mod:`repro.sim.engine`: trials become picklable
:class:`~repro.sim.engine.TrialTask` units with ``SeedSequence``-spawned
child streams, run inline (``workers=1``) or across a fork-safe process
pool (``workers=N``) with bit-identical results, and metrics accumulate
through streaming :class:`~repro.sim.engine.Welford` statistics so every
cell also carries variance/CI information.

Completed cells can persist across runs: pass a
:class:`repro.sim.cache.CellCache` and :func:`evaluate_recovery` keys the
cell by the canonical hash of its full spec (dataset, protocol, attack,
``beta``, ``eta``, ``trials``, mode, seeds — but *not* ``workers`` or
``chunk_users``, which cannot change results) and serves repeat calls
from disk without running a single trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Optional, Sequence

from repro._rng import RngLike, spawn, spawn_sequences
from repro.attacks.base import PoisoningAttack
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.cache import (
    CellCache,
    evaluation_cell_spec,
    resolved_cohort_chunk,
    trial_stream_spec,
)
from repro.sim.engine import (
    AdaptiveOutcome,
    MetricStats,
    TrialBudget,
    TrialTask,
    aggregate_metrics,
    parallel_map,
    resolve_star_targets,
    run_adaptive_trials,
    trial_metrics,
)
from repro.sim.pipeline import SimulationMode, malicious_count

__all__ = [
    "RecoveryEvaluation",
    "SweepResult",
    "evaluate_recovery",
    "format_table",
    "resolve_star_targets",
    "sweep_parameter",
]


@dataclass
class RecoveryEvaluation:
    """Averaged metrics of one experimental cell (one figure bar/point)."""

    dataset: str
    protocol: str
    attack: str
    beta: float
    eta: float
    trials: int
    #: MSE vs. the true frequencies (Eq. 36), averaged over trials.
    mse_before: float = 0.0
    mse_recover: float = 0.0
    mse_recover_star: Optional[float] = None
    mse_detection: Optional[float] = None
    #: Frequency gain of the target items (Eq. 37 convention; targeted only).
    fg_before: Optional[float] = None
    fg_recover: Optional[float] = None
    fg_recover_star: Optional[float] = None
    fg_detection: Optional[float] = None
    #: MSE of the estimated vs. true malicious frequencies (Figure 7).
    mse_malicious_estimate: Optional[float] = None
    mse_malicious_estimate_star: Optional[float] = None
    #: Streaming per-metric statistics (mean/variance/stderr/count) keyed by
    #: metric name, for confidence intervals over the trial average.
    stats: dict[str, MetricStats] = field(default_factory=dict)

    #: Metric columns emitted by :meth:`as_row`, in output order.
    METRIC_COLUMNS: ClassVar[tuple[str, ...]] = (
        "mse_before",
        "mse_recover",
        "mse_recover_star",
        "mse_detection",
        "fg_before",
        "fg_recover",
        "fg_recover_star",
        "fg_detection",
        "mse_malicious_estimate",
        "mse_malicious_estimate_star",
    )

    def ci95(self, metric: str) -> Optional[float]:
        """95% CI half-width of a metric's trial average, if estimable."""
        entry = self.stats.get(metric)
        return entry.ci95_halfwidth if entry is not None else None

    def as_row(self, ci: bool = False) -> dict[str, object]:
        """Flat dict for table printing / CSV dumps (every metric column).

        With ``ci=True`` every metric column is followed by a ``<metric>±``
        column carrying the 95% confidence half-width of its trial average
        (``None`` when fewer than two trials contributed).
        """
        row: dict[str, object] = {
            "dataset": self.dataset,
            "protocol": self.protocol,
            "attack": self.attack,
            "beta": self.beta,
            "eta": self.eta,
            "trials": self.trials,
        }
        for metric in self.METRIC_COLUMNS:
            row[metric] = getattr(self, metric)
            if ci:
                row[f"{metric}±"] = self.ci95(metric)
        return row


def evaluate_recovery(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack],
    beta: float = 0.05,
    eta: float = 0.2,
    trials: int = 10,
    mode: SimulationMode = "fast",
    with_star: bool = True,
    with_detection: bool = False,
    aa_top_k: int = 5,
    rng: RngLike = None,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    strict_beta: bool = False,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> RecoveryEvaluation:
    """Run one experimental cell and average over ``trials``.

    Parameters
    ----------
    dataset:
        Genuine population (histogram) of the cell.
    protocol:
        The LDP frequency oracle under attack.
    attack:
        Poisoning attack, or ``None`` for an unpoisoned cell.
    beta:
        Malicious user fraction ``m / (n + m)`` (paper default 0.05).
    eta:
        Server-side zero-threshold parameter of LDPRecover.
    trials:
        Independent poisoning rounds averaged into the cell.
    mode:
        Simulation mode per :func:`repro.sim.pipeline.run_trial`;
        ``with_detection`` requires ``mode="sampled"`` because the
        Detection baseline filters individual reports.
    with_star:
        Also evaluate LDPRecover* (the partial-knowledge variant).
    with_detection:
        Also evaluate the Detection baseline (needs ``mode="sampled"``).
    aa_top_k:
        Number of top-increase items LDPRecover* assumes for untargeted
        attacks (the AA rule of Section VI-A4).
    rng:
        Seed or generator; per-trial streams are ``SeedSequence`` children
        spawned from it.
    workers:
        Trial fan-out over a process pool (``None``/``0`` = all cores);
        results are bit-identical to the serial ``workers=1`` path under
        the same seed, so this never affects the cell's cache key.
    chunk_users:
        Users simulated per chunk in the bounded-memory exact path;
        passing it upgrades ``mode="fast"`` to ``"chunked"``.  Like
        ``workers`` it is an execution knob excluded from the cache key.
    olh_cohort:
        Run a cohort-capable protocol (OLH) in seed-cohort mode: each
        perturb batch draws this many shared hash seeds, enabling the
        O(K*d + n) grouped aggregation.  Unlike ``workers`` /
        ``chunk_users`` this *changes the report distribution* (shared
        seeds correlate users' support sets), so for report-level cells
        the cohort size — and, in chunked mode, the resolved chunk size,
        which sets the cohort schedule — is part of the cell's cache key.
        A no-op in ``mode="fast"``, whose distributional sampler is
        cohort-independent (those cells keep their per-user-seed cache
        entry).  Raises for protocols without cohort support.
    strict_beta:
        Turn the "beta rounds to zero malicious users" warning into an
        error before any trial runs.
    cache:
        Optional :class:`repro.sim.cache.CellCache`.  On a hit the cached
        :class:`RecoveryEvaluation` is returned without running any
        trials; on a miss the freshly computed cell is stored.
    budget:
        Optional :class:`repro.sim.engine.TrialBudget`.  When given,
        ``trials`` is superseded: the cell runs adaptive trial batches
        through :func:`repro.sim.engine.run_adaptive_trials` until every
        metric's 95% CI half-width reaches the budget's target (or its
        ``max_trials`` cap), and — with a ``cache`` — trials persist as
        appendable blocks so a later, larger budget resumes instead of
        recomputing.  The result is bit-identical to a fixed-budget call
        at the achieved trial count under the same ``rng``.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    if with_detection and mode != "sampled":
        raise InvalidParameterError("Detection requires mode='sampled'")
    if chunk_users is not None and mode == "fast":
        mode = "chunked"
    if chunk_users is not None and mode == "sampled":
        raise InvalidParameterError(
            "chunk_users is incompatible with mode='sampled' (chunked simulation "
            "does not retain reports); use mode='chunked' without detection"
        )
    if olh_cohort is not None:
        with_cohort = getattr(protocol, "with_cohort", None)
        if with_cohort is None:
            raise InvalidParameterError(
                f"olh_cohort requires a cohort-capable protocol (OLH/BLH), "
                f"got {protocol.name!r}"
            )
        # The cohort-configured copy is used everywhere below, including
        # the cache spec: cohort mode changes the report distribution, so
        # it must (and does, via the protocol fingerprint) change the key.
        # In mode="fast" the distributional sampler is cohort-independent,
        # so the knob is a deliberate no-op there: fast cells keep sharing
        # the per-user-seed cache entry instead of re-simulating identical
        # rows under a forked key.  The copy is still built first so an
        # invalid cohort size raises in every mode.
        cohorted = with_cohort(olh_cohort)
        if mode != "fast":
            protocol = cohorted
    if attack is not None:
        # Surface the m=0 rounding problem at the cell level — under
        # strict_beta this fails fast before any worker spawns, and the
        # warning fires here even when pooled workers' stderr is lost.
        # (Trials may re-warn from run_trial in their own processes.)
        malicious_count(dataset.num_users, beta, strict=strict_beta)

    # Seeds are spawned before the cache lookup so the parent RNG advances
    # identically on hits and misses — later cells see the same streams
    # whether or not this one came from disk.  A budget spawns the full
    # max_trials stream up front: the first k children are identical to a
    # fixed k-trial run's seeds, which is the bit-identity anchor.
    seeds = spawn_sequences(rng, trials if budget is None else budget.max_trials)
    spec = None
    if cache is not None:
        spec = evaluation_cell_spec(
            dataset,
            protocol,
            attack,
            beta=beta,
            eta=eta,
            trials=trials if budget is None else budget.max_trials,
            mode=mode,
            with_star=with_star,
            with_detection=with_detection,
            aa_top_k=aa_top_k,
            seeds=seeds,
            cohort_chunk_users=resolved_cohort_chunk(protocol, mode, chunk_users),
        )
        if budget is not None:
            spec["budget"] = budget.fingerprint()
        cached = cache.get_evaluation(spec)
        if cached is not None:
            return cached

    def _task(seed) -> TrialTask:
        return TrialTask(
            dataset=dataset,
            protocol=protocol,
            attack=attack,
            seed=seed,
            beta=beta,
            eta=eta,
            mode=mode,
            with_star=with_star,
            with_detection=with_detection,
            aa_top_k=aa_top_k,
            chunk_users=chunk_users,
        )

    outcome: Optional[AdaptiveOutcome] = None
    if budget is not None:
        store = None
        if cache is not None and spec is not None:
            store = cache.block_store(trial_stream_spec(spec))
        outcome = run_adaptive_trials(
            budget, trial_metrics, _task, seeds, workers=workers, store=store
        )
        stats = outcome.stats
        trials = outcome.trials
    else:
        tasks = [_task(seed) for seed in seeds]
        stats = aggregate_metrics(parallel_map(trial_metrics, tasks, workers=workers))

    def _mean(metric: str) -> Optional[float]:
        entry = stats.get(metric)
        return entry.mean if entry is not None else None

    evaluation = RecoveryEvaluation(
        dataset=dataset.name,
        protocol=protocol.name,
        attack=attack.describe() if attack is not None else "none",
        beta=beta,
        eta=eta,
        trials=trials,
        mse_before=_mean("mse_before") or 0.0,
        mse_recover=_mean("mse_recover") or 0.0,
        mse_recover_star=_mean("mse_recover_star"),
        mse_detection=_mean("mse_detection"),
        fg_before=_mean("fg_before"),
        fg_recover=_mean("fg_recover"),
        fg_recover_star=_mean("fg_recover_star"),
        fg_detection=_mean("fg_detection"),
        mse_malicious_estimate=_mean("mse_malicious_estimate"),
        mse_malicious_estimate_star=_mean("mse_malicious_estimate_star"),
        stats=stats,
    )
    if cache is not None and spec is not None:
        cache.put_evaluation(
            spec, evaluation, meta=None if outcome is None else outcome.meta()
        )
    return evaluation


@dataclass
class SweepResult:
    """One varied parameter value and its evaluation."""

    parameter: str
    value: float
    evaluation: RecoveryEvaluation


def sweep_parameter(
    parameter: str,
    values: Iterable[float],
    evaluate: Callable[[float, RngLike], RecoveryEvaluation],
    rng: RngLike = None,
) -> list[SweepResult]:
    """Evaluate over a parameter grid with independent child RNGs.

    ``parameter`` names the swept knob (recorded in each
    :class:`SweepResult`), ``values`` is its grid, and
    ``evaluate(value, rng)`` builds and runs one cell — Figures 5-6's
    beta/epsilon/eta sweeps are thin closures over
    :func:`evaluate_recovery`.  Each grid point receives an independent
    child of ``rng``, so inserting or removing values never perturbs the
    other cells' streams.
    """
    values = list(values)
    rngs = spawn(rng, len(values))
    return [
        SweepResult(parameter=parameter, value=float(v), evaluation=evaluate(v, child))
        for v, child in zip(values, rngs)
    ]


def format_table(rows: Sequence[dict[str, object]], float_format: str = "{:.3e}") -> str:
    """Render ``rows`` as an aligned text table (the benches' format).

    ``float_format`` is the format string applied to float cells;
    ``None`` cells render as ``-``.
    """
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col)
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    divider = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rendered)
    return f"{header}\n{divider}\n{body}"
