"""End-to-end poisoning trial (the Figure 2 process).

One trial simulates: genuine users perturb and report -> the attacker
injects ``m`` crafted reports -> the server aggregates the poisoned
frequency vector.  The result carries every intermediate vector needed by
the metrics and recovery methods, plus (in ``sampled`` mode) the raw
reports for report-level defenses (Detection, k-means).

``beta`` follows the paper: the *fraction of malicious users among all
users*, ``beta = m / (n + m)``, so ``m = beta * n / (1 - beta)`` for a
dataset of ``n`` genuine users.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Literal, Optional

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import PoisoningAttack
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle, counts_to_items

SimulationMode = Literal["fast", "sampled", "chunked"]


def malicious_count(num_genuine: int, beta: float, strict: bool = False) -> int:
    """Malicious users joining ``num_genuine`` at malicious fraction ``beta``.

    When ``beta > 0`` but the population is so small that the count rounds
    to zero, the "attacked" cell would silently run unpoisoned — a warning
    is emitted, or :class:`~repro.exceptions.InvalidParameterError` raised
    under ``strict=True``.
    """
    if not 0.0 <= beta < 1.0:
        raise InvalidParameterError(f"beta must be in [0, 1), got {beta}")
    m = int(round(beta * num_genuine / (1.0 - beta)))
    if beta > 0.0 and m == 0:
        message = (
            f"beta={beta} with n={num_genuine} genuine users rounds to m=0 "
            f"malicious users: the cell will run unpoisoned"
        )
        if strict:
            raise InvalidParameterError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    return m


@dataclass
class TrialResult:
    """All artifacts of one poisoning trial."""

    #: True frequency vector of the genuine data (the recovery target).
    true_frequencies: np.ndarray
    #: Frequencies aggregated from genuine reports only (``f_X_tilde``).
    genuine_frequencies: np.ndarray
    #: Frequencies aggregated from all reports (``f_Z``).
    poisoned_frequencies: np.ndarray
    #: Frequencies aggregated from malicious reports only (``f_Y``),
    #: ``None`` when no malicious users were injected.
    malicious_frequencies: Optional[np.ndarray]
    #: Genuine and malicious population sizes.
    n: int
    m: int
    #: Raw combined reports (``sampled`` mode only; genuine first).
    reports: Optional[Any] = None
    #: Mask over ``reports`` marking the malicious tail (ground truth for
    #: defense evaluation; a real server never sees it).
    malicious_mask: Optional[np.ndarray] = None

    @property
    def beta(self) -> float:
        """Realized malicious fraction ``m / (n + m)``."""
        total = self.n + self.m
        return self.m / total if total else 0.0

    @property
    def true_eta(self) -> float:
        """Realized malicious/genuine ratio ``m / n``."""
        return self.m / self.n if self.n else 0.0


def run_trial(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack] = None,
    beta: float = 0.05,
    mode: SimulationMode = "fast",
    rng: RngLike = None,
    chunk_users: Optional[int] = None,
) -> TrialResult:
    """Simulate one poisoning round.

    Parameters
    ----------
    dataset:
        Genuine users' data (histogram).
    protocol:
        The LDP frequency oracle; its ``domain_size`` must match.
    attack:
        Poisoning attack, or ``None``/``beta=0`` for an unpoisoned round.
    beta:
        Malicious fraction ``m/(n+m)``; paper default 0.05.
    mode:
        ``"fast"`` draws genuine aggregated counts from their marginal
        laws (milliseconds at paper scale); ``"sampled"`` materializes
        every report (needed by Detection / k-means defenses);
        ``"chunked"`` runs the exact report-level simulation in
        bounded-memory chunks without retaining reports (see
        :func:`repro.sim.engine.run_chunked_trial`).
    rng:
        Seed or generator for the whole trial.
    chunk_users:
        Users simulated per chunk in ``"chunked"`` mode (default
        :data:`repro.sim.engine.DEFAULT_CHUNK_USERS`); rejected in the
        other modes, which never chunk.
    """
    if dataset.domain_size != protocol.domain_size:
        raise InvalidParameterError(
            f"dataset domain size {dataset.domain_size} != protocol domain size "
            f"{protocol.domain_size}"
        )
    if mode == "chunked":
        from repro.sim.engine import run_chunked_trial

        return run_chunked_trial(
            dataset, protocol, attack, beta=beta, rng=rng, chunk_users=chunk_users
        )
    if chunk_users is not None:
        raise InvalidParameterError(
            f"chunk_users only applies to mode='chunked', got mode={mode!r}"
        )
    gen = as_generator(rng)
    n = dataset.num_users
    m = malicious_count(n, beta) if attack is not None else 0

    genuine_reports = None
    if mode == "sampled":
        items = counts_to_items(dataset.counts, gen)
        genuine_reports = protocol.perturb(items, gen)
        genuine_counts = protocol.support_counts(genuine_reports)
    elif mode == "fast":
        genuine_counts = protocol.sample_genuine_counts(dataset.counts, gen)
    else:
        raise InvalidParameterError(f"mode must be 'fast' or 'sampled', got {mode!r}")

    genuine_freq = protocol.estimate_frequencies(genuine_counts, n)

    if m > 0 and attack is not None:
        malicious_reports = attack.craft(protocol, m, gen)
        malicious_counts = protocol.support_counts(malicious_reports)
        malicious_freq = protocol.estimate_frequencies(malicious_counts, m)
        poisoned_freq = protocol.estimate_frequencies(genuine_counts + malicious_counts, n + m)
        reports = None
        malicious_mask = None
        if mode == "sampled":
            reports = protocol.concat_reports(genuine_reports, malicious_reports)
            malicious_mask = np.zeros(n + m, dtype=bool)
            malicious_mask[n:] = True
    else:
        malicious_freq = None
        poisoned_freq = genuine_freq
        reports = genuine_reports
        malicious_mask = np.zeros(n, dtype=bool) if mode == "sampled" else None

    return TrialResult(
        true_frequencies=dataset.frequencies,
        genuine_frequencies=genuine_freq,
        poisoned_frequencies=poisoned_freq,
        malicious_frequencies=malicious_freq,
        n=n,
        m=m,
        reports=reports,
        malicious_mask=malicious_mask,
    )
