"""Evaluation metrics (paper Section VI-B).

* :func:`mse` — Eq. 36, the per-item mean squared error between the true
  frequencies and an aggregated (poisoned or recovered) vector.
* :func:`frequency_gain` — Eq. 37.  Note on sign: as printed the equation
  is ``sum_t (f_X(t) - f*_Z(t))``, which is negative for a successful
  attack, yet Figure 4 plots positive before-recovery gains.  We follow
  the figure (and Cao et al.'s original definition):
  ``FG = sum_t (f_after(t) - f_genuine(t))`` — positive when the targets
  were promoted, about zero after a good recovery, negative when recovery
  over-corrects (the paper's "FG < 0" observation for LDPRecover*).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


def _pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise InvalidParameterError(
            f"metric inputs must be equal-shape 1-D vectors, got {x.shape} and {y.shape}"
        )
    return x, y


def mse(true_freq: np.ndarray, estimate: np.ndarray) -> float:
    """Mean squared error of ``estimate`` against ``true_freq`` (Eq. 36)."""
    x, y = _pair(true_freq, estimate)
    return float(np.mean((x - y) ** 2))


def l1_distance(true_freq: np.ndarray, estimate: np.ndarray) -> float:
    """L1 distance of ``estimate`` from ``true_freq`` (Manip's objective)."""
    x, y = _pair(true_freq, estimate)
    return float(np.abs(x - y).sum())


def max_abs_error(true_freq: np.ndarray, estimate: np.ndarray) -> float:
    """Worst per-item deviation of ``estimate`` from ``true_freq``."""
    x, y = _pair(true_freq, estimate)
    return float(np.abs(x - y).max())


def frequency_gain(
    genuine_freq: np.ndarray,
    after_freq: np.ndarray,
    target_items: Sequence[int],
) -> float:
    """Frequency gain of the ``target_items`` (Eq. 37; sign per Figure 4).

    ``genuine_freq`` is the frequency vector aggregated from genuine users
    only; ``after_freq`` is the poisoned or recovered vector.
    """
    x, y = _pair(genuine_freq, after_freq)
    targets = np.unique(np.asarray(list(target_items), dtype=np.int64))
    if targets.size == 0:
        raise InvalidParameterError("frequency gain needs a non-empty target set")
    if targets.min() < 0 or targets.max() >= x.size:
        raise InvalidParameterError(f"target items must lie in [0, {x.size})")
    return float((y[targets] - x[targets]).sum())
