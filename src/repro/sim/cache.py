"""Persistent experiment-cell cache: content-addressed, resumable sweeps.

Every exhibit of the paper (Figures 3-10, Table I) is a grid of
*experimental cells*, and each cell is a pure function of its spec —
dataset, protocol and parameters, attack and parameters, ``beta``,
``eta``, ``trials``, the simulation mode, and the exact per-trial seed
sequences.  This module caches completed cells on disk keyed by the
canonical hash of that spec, so:

* an interrupted sweep resumes from its completed cells on rerun;
* regenerating a figure after a code-comment-only change costs zero
  simulation time;
* execution knobs that cannot change results — ``workers`` (bit-identical
  by construction) and ``chunk_users`` (statistically identical chunked
  aggregation) — are deliberately **excluded** from the key, so a run on
  one machine shape warms the cache for every other.

Layout: one JSON file per cell under
``<cache_dir>/<tag>/<key[:2]>/<key>.json`` where ``tag`` versions the
cache by schema (:data:`CACHE_SCHEMA`), the ``repro`` package version,
and a content hash of the simulation-relevant source tree
(:func:`source_digest`) — a release *or* an in-place code edit
invalidates old entries wholesale instead of serving stale rows.
Writes are atomic (temp file + ``os.replace``) so a Ctrl-C never
leaves a truncated entry behind; unreadable entries are treated as misses
and reported by :meth:`CellCache.verify`.

The cache stores two kinds of payloads:

* ``"evaluation"`` — a serialized
  :class:`~repro.sim.experiment.RecoveryEvaluation` (including its
  per-metric :class:`~repro.sim.engine.MetricStats`), written by
  :func:`repro.sim.experiment.evaluate_recovery`;
* ``"row"`` — one flat exhibit row dict, written by the figure generators
  whose cells do not go through ``evaluate_recovery`` (Figure 8/9,
  Table I).

The CLI exposes the store via ``--cache-dir`` / ``--no-cache`` /
``--cache-stats`` on ``run`` and a ``cache`` subcommand (``ls`` /
``prune`` / ``verify``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.attacks.base import PoisoningAttack
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.engine import DEFAULT_CHUNK_USERS, MetricStats, Welford

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (experiment -> cache)
    from repro.sim.experiment import RecoveryEvaluation

__all__ = [
    "CACHE_SCHEMA",
    "CacheEntry",
    "CacheStats",
    "CellBlockStore",
    "CellCache",
    "SHARD_PLACEHOLDER_KEY",
    "cache_tag",
    "canonical_key",
    "default_cache_dir",
    "evaluation_cell_spec",
    "fingerprint_attack_schedule",
    "fingerprint_dataset",
    "fingerprint_kv_population",
    "fingerprint_object",
    "fingerprint_seed_sequences",
    "resolve_cache",
    "resolved_cohort_chunk",
    "row_cell_spec",
    "scenario_cell_spec",
    "source_digest",
    "trial_stream_spec",
]

#: Cache schema version: bump whenever the entry layout, the spec
#: fingerprints, or the payload serialization change incompatibly.
CACHE_SCHEMA = 1

#: Marker key present on every placeholder row payload produced by the
#: shard / enumeration cache adapters (:mod:`repro.sim.shard`).  Row
#: generators that post-process their cached payloads (rather than
#: returning them verbatim) must pass marked payloads through untouched —
#: the callers that produce them discard the rows.
SHARD_PLACEHOLDER_KEY = "__shard_placeholder__"

#: Environment variable that overrides the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


# ----------------------------------------------------------------------
# Spec fingerprints
# ----------------------------------------------------------------------
def _hash_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _fingerprint_array(arr: np.ndarray) -> dict[str, Any]:
    """Content hash of a numpy array (dtype + shape + raw bytes)."""
    arr = np.ascontiguousarray(arr)
    return {
        "__array__": _hash_bytes(arr.tobytes()),
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
    }


_SKIP = object()  # sentinel: attribute carries no cell-identity information


def _fingerprint_value(value: Any) -> Any:
    """Recursively reduce a value to canonical JSON-able identity data.

    RNG machinery (``Generator`` / ``BitGenerator`` / ``SeedSequence``
    attributes) and callables are skipped: attack/protocol objects hold
    construction-time generators whose state does not influence results —
    trial randomness flows exclusively through the spec's seed list.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return _fingerprint_array(value)
    if isinstance(
        value, (np.random.Generator, np.random.BitGenerator, np.random.SeedSequence)
    ):
        return _SKIP
    if callable(value) and not isinstance(value, type):
        return _SKIP
    if isinstance(value, dict):
        out = {str(k): _fingerprint_value(v) for k, v in sorted(value.items())}
        return {k: v for k, v in out.items() if v is not _SKIP}
    if isinstance(value, (list, tuple)):
        return [v for v in (_fingerprint_value(x) for x in value) if v is not _SKIP]
    if isinstance(value, Dataset):
        return fingerprint_dataset(value)
    if isinstance(value, (FrequencyOracle, PoisoningAttack)):
        return fingerprint_object(value)
    if hasattr(value, "__dict__"):
        return fingerprint_object(value)
    return repr(value)


def fingerprint_object(obj: Any) -> dict[str, Any]:
    """Canonical identity of a protocol / attack / defense instance.

    Walks ``obj``'s instance ``vars()``: scalars pass through, arrays are
    content-hashed, nested components (e.g. :class:`MultiAttacker`'s
    sub-attacks, IPA's inner attack) recurse, and RNG state is skipped
    (see :func:`_fingerprint_value`).  Classes may declare a
    ``FINGERPRINT_EXCLUDE`` set of execution-only attribute names that
    cannot change results (e.g. OLH's ``chunk_cells`` support-scan
    budget); those are omitted, exactly like the engine's ``workers`` /
    ``chunk_users`` knobs are omitted from the cell spec.  Attributes that
    *do* change the report distribution (e.g. OLH's ``cohort``) stay in.
    The concrete class name is always included so two classes with
    identical attributes cannot collide.
    """
    fp: dict[str, Any] = {"__type__": type(obj).__name__}
    describe = getattr(obj, "describe", None)
    if callable(describe):
        fp["describe"] = str(describe())
    exclude = getattr(type(obj), "FINGERPRINT_EXCLUDE", frozenset())
    for key, value in sorted(vars(obj).items()):
        if key in exclude:
            continue
        printed = _fingerprint_value(value)
        if printed is not _SKIP:
            fp[key] = printed
    return fp


def fingerprint_dataset(dataset: Dataset) -> dict[str, Any]:
    """Canonical identity of a dataset: name plus histogram content hash."""
    return {
        "name": dataset.name,
        "counts": _fingerprint_array(dataset.counts),
        "num_users": dataset.num_users,
        "domain_size": dataset.domain_size,
    }


def fingerprint_seed_sequences(
    seeds: Sequence[np.random.SeedSequence],
) -> list[dict[str, Any]]:
    """Canonical identity of the per-trial ``seeds`` of a cell.

    Each :class:`~numpy.random.SeedSequence` is fully determined by its
    ``entropy``, ``spawn_key`` and ``pool_size``, so this captures exactly
    the randomness every trial will consume — independent of whether the
    trials later run inline or across a process pool.  Non-deterministic
    runs (``rng=None`` draws OS entropy) simply produce keys that will
    never be hit again, i.e. natural cache misses.
    """
    out = []
    for seq in seeds:
        entropy = seq.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        out.append(
            {
                "entropy": entropy,
                "spawn_key": [int(k) for k in seq.spawn_key],
                "pool_size": int(seq.pool_size),
            }
        )
    return out


def resolved_cohort_chunk(
    protocol: FrequencyOracle, mode: str, chunk_users: Optional[int]
) -> Optional[int]:
    """The chunk size to include in a cell spec, or ``None``.

    ``chunk_users`` is normally an execution-only knob excluded from cache
    keys (chunked aggregation of per-user-seed reports is distributed
    exactly as the unchunked path).  A seed-cohort ``protocol`` breaks
    that premise in ``mode="chunked"``: every chunk draws one fresh cohort
    of shared seeds, so the chunk schedule shapes the report correlation
    structure (and hence estimate variance).  For those cells this returns
    the *resolved* chunk size (``chunk_users`` or
    :data:`~repro.sim.engine.DEFAULT_CHUNK_USERS`) so it enters the key;
    for every other cell it returns ``None`` and the key stays
    chunk-invariant.
    """
    if getattr(protocol, "cohort", None) is None or str(mode) != "chunked":
        return None
    return int(chunk_users) if chunk_users is not None else DEFAULT_CHUNK_USERS


def evaluation_cell_spec(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack],
    *,
    beta: float,
    eta: float,
    trials: int,
    mode: str,
    with_star: bool,
    with_detection: bool,
    aa_top_k: int,
    seeds: Sequence[np.random.SeedSequence],
    cohort_chunk_users: Optional[int] = None,
) -> dict[str, Any]:
    """The full cell spec of one :func:`evaluate_recovery` call.

    Every field that can change the returned
    :class:`~repro.sim.experiment.RecoveryEvaluation` is present —
    ``dataset``, ``protocol``, ``attack`` (all content-fingerprinted),
    ``beta``, ``eta``, ``trials``, the *resolved* simulation ``mode``, the
    evaluation switches ``with_star`` / ``with_detection`` / ``aa_top_k``,
    and the per-trial ``seeds``.  Execution-only knobs (``workers``,
    ``chunk_users``) are deliberately absent — except for cohort-mode
    chunked cells, whose resolved chunk size arrives via
    ``cohort_chunk_users`` (see :func:`resolved_cohort_chunk`) because
    there it shapes the report distribution.
    """
    spec = {
        "kind": "evaluation",
        "dataset": fingerprint_dataset(dataset),
        "protocol": fingerprint_object(protocol),
        "attack": None if attack is None else fingerprint_object(attack),
        "beta": float(beta),
        "eta": float(eta),
        "trials": int(trials),
        "mode": str(mode),
        "with_star": bool(with_star),
        "with_detection": bool(with_detection),
        "aa_top_k": int(aa_top_k),
        "seeds": fingerprint_seed_sequences(seeds),
    }
    if cohort_chunk_users is not None:
        spec["cohort_chunk_users"] = int(cohort_chunk_users)
    return spec


def row_cell_spec(
    exhibit: str,
    dataset: Dataset,
    protocol: Optional[FrequencyOracle],
    attacks: Iterable[PoisoningAttack],
    params: dict[str, Any],
    seeds: Sequence[np.random.SeedSequence],
) -> dict[str, Any]:
    """The cell spec of one custom exhibit row (Figure 8/9, Table I).

    ``exhibit`` names the generator (e.g. ``"figure8"``), ``attacks`` the
    attack instances involved in the cell (possibly none), ``params`` the
    remaining cell parameters (e.g. ``beta``, ``xi``, ``mode``), and
    ``seeds`` the per-trial seed sequences; ``dataset`` and ``protocol``
    are content-fingerprinted like in :func:`evaluation_cell_spec`.
    """
    return {
        "kind": "row",
        "exhibit": str(exhibit),
        "dataset": fingerprint_dataset(dataset),
        "protocol": None if protocol is None else fingerprint_object(protocol),
        "attacks": [fingerprint_object(a) for a in attacks],
        "params": _fingerprint_value(dict(params)),
        "seeds": fingerprint_seed_sequences(seeds),
    }


def fingerprint_kv_population(population: Any) -> dict[str, Any]:
    """Canonical identity of a key-value population.

    Captures everything that determines the genuine report distribution
    of a :class:`repro.sim.scenarios.KVPopulation` (duck-typed so the
    cache stays import-light): the ``name``, content hashes of the
    key-frequency and per-key-mean vectors, and the population size.
    """
    return {
        "name": str(population.name),
        "frequencies": _fingerprint_array(np.asarray(population.frequencies)),
        "means": _fingerprint_array(np.asarray(population.means)),
        "num_users": int(population.num_users),
    }


def fingerprint_attack_schedule(schedule: Any) -> dict[str, Any]:
    """Canonical identity of a per-epoch attack schedule.

    Captures the full scalar state of an
    :class:`repro.sim.history.AttackSchedule` (duck-typed so the cache
    stays import-light): the shape ``kind`` plus every parameter that
    shapes the per-epoch malicious-fraction vector.  Used by the
    ``epochs`` scenario to put the schedule into its cell specs, so
    cells with different burst epochs or ramp endpoints never collide.
    """
    return {
        "kind": str(schedule.kind),
        "beta": float(schedule.beta),
        "start_epoch": int(schedule.start_epoch),
        "end_beta": None if schedule.end_beta is None else float(schedule.end_beta),
    }


def scenario_cell_spec(
    scenario: str,
    source: Any,
    protocol: Any,
    attacks: Iterable[Any],
    params: dict[str, Any],
    seeds: Sequence[np.random.SeedSequence],
) -> dict[str, Any]:
    """The cell spec of one scenario-exhibit row (:mod:`repro.sim.scenarios`).

    The scenario analogue of :func:`row_cell_spec`, relaxed so workloads
    beyond plain frequency oracles fit: ``scenario`` names the registered
    exhibit (e.g. ``"kv"``), ``source`` is the population the cell draws
    from — a :class:`~repro.datasets.base.Dataset`, a key-value
    population (anything with ``means``, via
    :func:`fingerprint_kv_population`), or any fingerprintable object —
    ``protocol`` and ``attacks`` are the (possibly non-``FrequencyOracle``
    / non-``PoisoningAttack``) instances involved, ``params`` the
    remaining cell parameters, and ``seeds`` the per-trial seed
    sequences.  The payload kind stays ``"row"`` so scenario cells flow
    through the same cache / enumeration / shard machinery as the custom
    figure rows.
    """
    if isinstance(source, Dataset):
        fingerprint: Any = fingerprint_dataset(source)
    elif hasattr(source, "means"):
        fingerprint = fingerprint_kv_population(source)
    else:
        fingerprint = _fingerprint_value(source)
    return {
        "kind": "row",
        "exhibit": f"scenario-{scenario}",
        "source": fingerprint,
        "protocol": None if protocol is None else fingerprint_object(protocol),
        "attacks": [fingerprint_object(a) for a in attacks],
        "params": _fingerprint_value(dict(params)),
        "seeds": fingerprint_seed_sequences(seeds),
    }


def canonical_key(spec: dict[str, Any]) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON form of a spec."""
    encoded = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return _hash_bytes(encoded.encode("utf-8"))


def trial_stream_spec(spec: dict[str, Any]) -> dict[str, Any]:
    """The spec addressing a budgeted cell's appendable trial-block stream.

    Derived from a cell's summary ``spec`` by dropping the fields that
    vary with the trial budget — ``trials``, the full ``seeds`` list, and
    the ``budget`` fingerprint itself — and keeping only the *first*
    per-trial seed fingerprint (``seed_stream``).  Because per-trial seeds
    are consecutive siblings of one parent :class:`~numpy.random.SeedSequence`
    (``spawn_key`` suffixes ``i, i+1, ...``), the first child pins the
    entire canonical trial stream: every budget over the same cell shares
    one block directory, so topping a cell up never re-simulates trials a
    smaller budget already ran.
    """
    stream = {
        key: value
        for key, value in spec.items()
        if key not in ("kind", "trials", "seeds", "budget")
    }
    seeds = spec.get("seeds") or []
    stream["kind"] = "trial-stream"
    stream["seed_stream"] = seeds[0] if seeds else None
    return stream


# ----------------------------------------------------------------------
# Payload (de)serialization
# ----------------------------------------------------------------------
def _stats_to_payload(stats: dict[str, MetricStats]) -> dict[str, dict[str, Any]]:
    return {
        name: {
            "mean": entry.mean,
            "variance": entry.variance,
            "stderr": entry.stderr,
            "count": entry.count,
        }
        for name, entry in stats.items()
    }


def _stats_from_payload(payload: dict[str, dict[str, Any]]) -> dict[str, MetricStats]:
    return {
        name: MetricStats(
            mean=float(entry["mean"]),
            variance=None if entry["variance"] is None else float(entry["variance"]),
            stderr=None if entry["stderr"] is None else float(entry["stderr"]),
            count=int(entry["count"]),
        )
        for name, entry in payload.items()
    }


def evaluation_to_payload(evaluation: "RecoveryEvaluation") -> dict[str, Any]:
    """Serialize an ``evaluation`` (with its stats) to a plain JSON dict."""
    payload = dict(evaluation.as_row())
    payload["stats"] = _stats_to_payload(evaluation.stats)
    return payload


def payload_to_evaluation(payload: dict[str, Any]) -> "RecoveryEvaluation":
    """Rebuild a :class:`RecoveryEvaluation` from its cached payload."""
    from repro.sim.experiment import RecoveryEvaluation  # deferred: import cycle

    data = dict(payload)
    stats = _stats_from_payload(data.pop("stats", {}))
    data["trials"] = int(data["trials"])
    return RecoveryEvaluation(stats=stats, **data)


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
#: Sub-packages whose source content versions the cache tag: everything
#: that can change a simulated cell's result.
_SOURCE_PACKAGES = ("sim", "core", "protocols", "attacks")

#: Memoized digest of the installed package (computed once per process).
_DEFAULT_SOURCE_DIGEST: Optional[str] = None


def _compute_source_digest(root: pathlib.Path) -> str:
    """sha256 over (relative path, bytes) of every ``*.py`` under ``root``'s
    :data:`_SOURCE_PACKAGES` sub-trees, truncated to 12 hex chars."""
    digest = hashlib.sha256()
    for package in _SOURCE_PACKAGES:
        base = root / package
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            try:
                data = path.read_bytes()
            except OSError:  # pragma: no cover - unreadable file
                continue
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(data)
            digest.update(b"\0")
    return digest.hexdigest()[:12]


def source_digest(root: Optional[str | os.PathLike[str]] = None) -> str:
    """Short content hash of the simulation-relevant source tree.

    Hashes every ``*.py`` file (relative path plus raw bytes) under the
    ``{sim,core,protocols,attacks}`` sub-packages of ``root`` — the
    installed ``repro`` package by default, whose digest is computed once
    per process.  Mixed into :func:`cache_tag`, this makes in-place source
    edits invalidate the cell cache automatically: the edited tree writes
    under a fresh tag instead of serving rows simulated by old code.
    """
    global _DEFAULT_SOURCE_DIGEST
    if root is not None:
        return _compute_source_digest(pathlib.Path(root))
    if _DEFAULT_SOURCE_DIGEST is None:
        _DEFAULT_SOURCE_DIGEST = _compute_source_digest(
            pathlib.Path(__file__).resolve().parent.parent
        )
    return _DEFAULT_SOURCE_DIGEST


def cache_tag() -> str:
    """The versioned subdirectory name isolating incompatible caches.

    Combines the cache schema, the installed ``repro`` version, and the
    :func:`source_digest` of the simulation-relevant source tree, so both
    releases *and* in-place code edits invalidate old entries wholesale
    (no manual ``cache prune`` needed after editing simulation code).
    """
    from repro import __version__  # deferred: repro/__init__ imports repro.sim

    return f"v{CACHE_SCHEMA}-repro-{__version__}-{source_digest()}"


def default_cache_dir() -> pathlib.Path:
    """The cache root used when the caller does not pick one.

    Resolution order: the :data:`CACHE_DIR_ENV` environment variable, then
    ``$XDG_CACHE_HOME/repro-ldprecover``, then ``~/.cache/repro-ldprecover``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro-ldprecover"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`CellCache` instance.

    Besides the whole-cell counters, adaptive (budgeted) runs maintain
    trial-block counters: ``block_hits`` / ``block_trials_reused`` count
    blocks (and the trials inside them) served from disk instead of being
    re-simulated, ``block_stores`` counts freshly appended blocks.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0
    block_hits: int = 0
    block_trials_reused: int = 0
    block_stores: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> Optional[float]:
        """Fraction of lookups served from disk; ``None`` before any lookup."""
        return self.hits / self.lookups if self.lookups else None

    def summary(self) -> str:
        """One-line human summary (the ``--cache-stats`` output format)."""
        rate = self.hit_rate
        rendered = "n/a" if rate is None else f"{100.0 * rate:.1f}%"
        line = (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored (hit rate {rendered})"
        )
        if self.errors:
            line += f", {self.errors} unreadable entries"
        if self.block_hits or self.block_stores:
            line += (
                f", {self.block_hits} trial blocks reused "
                f"({self.block_trials_reused} trials), "
                f"{self.block_stores} appended"
            )
        return line


@dataclass(frozen=True)
class CacheEntry:
    """Metadata of one cached cell, as listed by ``repro cache ls``.

    ``meta`` carries store-time annotations outside the result payload;
    adaptive (budgeted) cells record their final trial count, block count
    and achieved CI half-width there.
    """

    key: str
    kind: str
    path: pathlib.Path
    created_at: float
    size_bytes: int
    spec: dict[str, Any] = field(repr=False)
    meta: Optional[dict[str, Any]] = field(default=None, repr=False)

    def summary_row(self) -> dict[str, object]:
        """Flat row for ``cache ls`` tables (best-effort spec highlights)."""
        spec = self.spec
        # Scenario rows carry their population under "source" instead of
        # "dataset" (it need not be a Dataset); show whichever is present.
        source = spec.get("dataset") or spec.get("source")
        dataset = source.get("name", "-") if isinstance(source, dict) else "-"
        protocol = (spec.get("protocol") or {}).get("describe") or (
            spec.get("protocol") or {}
        ).get("__type__", "-")
        if spec.get("kind") == "evaluation":
            attack = (spec.get("attack") or {}).get("describe", "none")
            exhibit = "evaluation"
            beta, eta, trials = spec.get("beta"), spec.get("eta"), spec.get("trials")
        else:
            attacks = spec.get("attacks") or []
            attack = ", ".join(a.get("describe", a.get("__type__", "?")) for a in attacks) or "none"
            exhibit = spec.get("exhibit", "row")
            params = spec.get("params") or {}
            beta, eta = params.get("beta"), params.get("eta")
            trials = len(spec.get("seeds") or [])
        meta = self.meta or {}
        if meta.get("trials") is not None:
            trials = meta["trials"]  # adaptive cells: the achieved count
        return {
            "key": self.key[:12],
            "kind": exhibit,
            "dataset": dataset,
            "protocol": protocol,
            "attack": attack,
            "beta": beta,
            "eta": eta,
            "trials": trials,
            "blocks": meta.get("blocks"),
            "ci95": meta.get("achieved_halfwidth"),
            "age_s": round(max(0.0, time.time() - self.created_at), 1),
            "bytes": self.size_bytes,
        }


class CellCache:
    """Content-addressed on-disk store of completed experimental cells.

    Parameters
    ----------
    cache_dir:
        Root directory of the store; created lazily on first write.
        Entries live under the versioned :func:`cache_tag` subdirectory.
    tag:
        Override the version tag (tests only; the default ties entries to
        the cache schema, the installed ``repro`` version, and the
        :func:`source_digest` of the simulation source tree).
    """

    def __init__(
        self, cache_dir: str | os.PathLike[str], tag: Optional[str] = None
    ) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        self.tag = tag or cache_tag()
        self.stats = CacheStats()

    @property
    def root(self) -> pathlib.Path:
        """The versioned directory actually holding this cache's entries."""
        return self.cache_dir / self.tag

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- core get/put --------------------------------------------------
    def key_for(self, spec: dict[str, Any]) -> str:
        """The canonical content key of a cell spec."""
        return canonical_key(spec)

    def _load(self, spec: dict[str, Any]) -> tuple[Optional[dict[str, Any]], bool]:
        """Read ``spec``'s payload from disk without touching the counters.

        Returns ``(payload, had_error)``: ``(None, False)`` for a clean
        miss (no entry file), ``(None, True)`` for an unreadable or
        mismatched entry.  The typed lookup wrappers layer decoding on top
        and count each lookup's outcome exactly once.
        """
        path = self._path(self.key_for(spec))
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("kind") != spec.get("kind"):
                raise ValueError("cached kind does not match requested kind")
            return entry["payload"], False
        except FileNotFoundError:
            return None, False
        except (ValueError, KeyError, OSError):
            return None, True

    def get(self, spec: dict[str, Any]) -> Optional[dict[str, Any]]:
        """Return the cached payload for ``spec``, or ``None`` on a miss.

        Unreadable or mismatched entries (truncated files, foreign kinds)
        count as misses and bump :attr:`CacheStats.errors`.
        """
        payload, had_error = self._load(spec)
        if payload is None:
            self.stats.misses += 1
            if had_error:
                self.stats.errors += 1
            return None
        self.stats.hits += 1
        return payload

    def contains(self, key: str) -> bool:
        """Whether an entry file for ``key`` exists (readability unchecked).

        The shard runner's completeness checks
        (:func:`repro.sim.shard.sweep_status` /
        :func:`repro.sim.shard.merge_sweep`) use this to test cell
        presence without paying a JSON parse per cell.
        """
        return self._path(key).is_file()

    def put(
        self,
        spec: dict[str, Any],
        payload: dict[str, Any],
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Store ``payload`` under ``spec``'s key (atomic write); return path.

        ``meta``, when given, is stored on the entry *next to* the payload
        (never inside it): adaptive runs annotate block counts and achieved
        half-widths there without perturbing the cached result bytes.
        """
        key = self.key_for(spec)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "kind": spec.get("kind", "row"),
            "schema": CACHE_SCHEMA,
            "created_at": time.time(),
            "spec": spec,
            "payload": payload,
        }
        if meta is not None:
            entry["meta"] = meta
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, separators=(",", ":"), default=float)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # -- typed convenience wrappers ------------------------------------
    def get_evaluation(self, spec: dict[str, Any]) -> Optional["RecoveryEvaluation"]:
        """Cached :class:`RecoveryEvaluation` for an evaluation spec, if any.

        A payload that no longer matches the current
        :class:`RecoveryEvaluation` shape (e.g. a field was renamed by an
        in-place code edit under the same cache tag) is treated as a miss
        and recomputed, not raised.  The lookup outcome is counted once,
        *after* decoding — a first-access shape mismatch is one miss plus
        one error, never a negative hit count.
        """
        payload, had_error = self._load(spec)
        evaluation = None
        if payload is not None:
            try:
                evaluation = payload_to_evaluation(payload)
            except (KeyError, TypeError, ValueError):
                had_error = True
        if evaluation is None:
            self.stats.misses += 1
            if had_error:
                self.stats.errors += 1
            return None
        self.stats.hits += 1
        return evaluation

    def put_evaluation(
        self,
        spec: dict[str, Any],
        evaluation: "RecoveryEvaluation",
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Store a completed :class:`RecoveryEvaluation` under its spec.

        ``meta`` is forwarded to :meth:`put` (adaptive-run annotations).
        """
        return self.put(spec, evaluation_to_payload(evaluation), meta=meta)

    # -- appendable trial blocks (adaptive budgets) --------------------
    def block_store(self, stream_spec: dict[str, Any]) -> "CellBlockStore":
        """The appendable trial-block store for one cell's trial stream.

        ``stream_spec`` is the cell's :func:`trial_stream_spec`; the
        returned :class:`CellBlockStore` satisfies the engine's
        :class:`repro.sim.engine.TrialBlockStore` protocol (its base
        ``claim`` always succeeds — block-level arbitration belongs to the
        shard layer's claim-coordinated wrapper).
        """
        return CellBlockStore(self, canonical_key(stream_spec))

    # -- maintenance (the `repro cache` subcommand) --------------------
    #
    # Maintenance may run while other processes (shard peers sharing this
    # cache directory) are writing and pruning concurrently.  Two rules
    # keep it race-free: in-flight temp files (``*.tmp``, non-atomic by
    # definition) are never treated as entries, and a file that vanishes
    # between listing and stat/open/unlink is already-gone, not an error.

    #: Age (seconds) past which a ``*.tmp`` file is considered orphaned —
    #: left behind by a SIGKILLed writer rather than an in-flight
    #: :meth:`CellCache.put` — and swept by :meth:`CellCache.prune`.
    TMP_ORPHAN_SECONDS = 3600.0

    def _entry_files(self, all_tags: bool = False) -> Iterator[pathlib.Path]:
        base = self.cache_dir if all_tags else self.root
        if not base.is_dir():
            return
        # rglob("*.json") never matches the ".tmp"-suffixed temp files of
        # in-flight writers, so concurrent puts are invisible here until
        # their atomic os.replace lands.  Trial-block files live inside
        # "<stream_key>.blocks/" directories and are not entries — they
        # have their own integrity pass in verify().
        for path in sorted(base.rglob("*.json")):
            if path.parent.suffix == ".blocks":
                continue
            yield path

    def _block_files(self, all_tags: bool = False) -> Iterator[pathlib.Path]:
        base = self.cache_dir if all_tags else self.root
        if not base.is_dir():
            return
        for path in sorted(base.rglob("*.json")):
            if path.parent.suffix == ".blocks":
                yield path

    def _block_dirs(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        yield from sorted(self.root.rglob("*.blocks"))

    def _sweep_orphan_tmp(self, all_tags: bool = False) -> int:
        """Delete orphaned writer temp files; return the number removed.

        A crashed (SIGKILLed) :meth:`put` cannot reach its cleanup
        handler, leaving a ``*.tmp`` file behind forever.  Files younger
        than :attr:`TMP_ORPHAN_SECONDS` are left alone — they may belong
        to a live writer on this or another machine.  ``all_tags``
        extends the sweep beyond the current version tag.
        """
        base = self.cache_dir if all_tags else self.root
        if not base.is_dir():
            return 0
        horizon = time.time() - self.TMP_ORPHAN_SECONDS
        removed = 0
        for path in sorted(base.rglob("*.tmp")):
            try:
                if path.stat().st_mtime > horizon:
                    continue
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue  # a concurrent sweep (or the writer) got there first
            except OSError:  # pragma: no cover - permission problems etc.
                continue
        return removed

    def count(self, all_tags: bool = False) -> int:
        """Number of entry files on disk (readable or not)."""
        return sum(1 for _ in self._entry_files(all_tags))

    def entries(self, all_tags: bool = False) -> list[CacheEntry]:
        """Readable entries of this cache version (or of ``all_tags``)."""
        out = []
        for path in self._entry_files(all_tags):
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                out.append(
                    CacheEntry(
                        key=str(entry["key"]),
                        kind=str(entry.get("kind", "row")),
                        path=path,
                        created_at=float(entry.get("created_at", 0.0)),
                        size_bytes=path.stat().st_size,
                        spec=entry.get("spec", {}),
                        meta=entry.get("meta"),
                    )
                )
            except FileNotFoundError:
                continue  # pruned by a concurrent process: already gone
            except (ValueError, KeyError, OSError):
                continue
        return out

    def prune(
        self, older_than_days: Optional[float] = None, all_tags: bool = False
    ) -> int:
        """Delete cached cells; return the number of files removed.

        ``older_than_days`` keeps entries younger than the horizon;
        ``None`` removes everything.  ``all_tags`` extends the sweep to
        entries written by other schema/package versions (the usual way to
        reclaim space after upgrades).  Every prune also sweeps orphaned
        writer temp files (``*.tmp`` older than
        :attr:`TMP_ORPHAN_SECONDS`, left by SIGKILLed writers) and trial
        block files (aged by file modification time — blocks carry no
        timestamps of their own); both count toward the returned total.
        Entries deleted concurrently by another process are treated as
        already gone, not errors.
        """
        if older_than_days is not None and older_than_days < 0:
            raise InvalidParameterError(
                f"older_than_days must be >= 0, got {older_than_days}"
            )
        horizon = (
            None if older_than_days is None else time.time() - 86_400.0 * older_than_days
        )
        removed = self._sweep_orphan_tmp(all_tags)
        for path in list(self._entry_files(all_tags)):
            if horizon is not None:
                try:
                    with path.open("r", encoding="utf-8") as handle:
                        created = float(json.load(handle).get("created_at", 0.0))
                except FileNotFoundError:
                    continue  # pruned by a concurrent process: already gone
                except (ValueError, OSError):
                    created = 0.0  # unreadable: always eligible
                if created > horizon:
                    continue
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue  # pruned by a concurrent process: already gone
            except OSError:  # pragma: no cover - permission problems etc.
                continue
        for path in list(self._block_files(all_tags)):
            try:
                if horizon is not None and path.stat().st_mtime > horizon:
                    continue
                path.unlink()
                removed += 1
            except FileNotFoundError:
                continue  # pruned by a concurrent process: already gone
            except OSError:  # pragma: no cover - permission problems etc.
                continue
        return removed

    def verify(self, delete: bool = False) -> list[tuple[pathlib.Path, str]]:
        """Check every entry's integrity; return ``(path, problem)`` pairs.

        An entry is healthy when it parses as JSON, carries a payload, and
        its stored key equals the canonical hash recomputed from its
        stored spec (i.e. the file content was not tampered with or
        half-written).  Trial-block directories get their own pass:
        every block must parse, match its filename range, carry one metric
        dict per trial with Welford states that refold exactly, and the
        blocks of a stream must tile ``[0, stop)`` contiguously without
        overlap (see :meth:`CellBlockStore.problems`).  ``delete`` removes
        the offenders.  Entries pruned by a concurrent process mid-check
        are skipped, not reported — a vanished file is not a corrupt file.
        """
        problems = []
        for path in self._entry_files():
            problem = None
            try:
                with path.open("r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                if "payload" not in entry:
                    problem = "missing payload"
                elif canonical_key(entry.get("spec", {})) != entry.get("key"):
                    problem = "key does not match stored spec"
                elif path.stem != entry.get("key"):
                    problem = "filename does not match stored key"
            except FileNotFoundError:
                continue  # pruned by a concurrent process: nothing to verify
            except (ValueError, OSError) as exc:
                problem = f"unreadable: {exc}"
            if problem is not None:
                problems.append((path, problem))
                if delete:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        for directory in self._block_dirs():
            store = CellBlockStore(self, directory.name.rsplit(".", 1)[0])
            for path, problem in store.problems():
                problems.append((path, problem))
                if delete:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return problems


def _block_welford_payload(
    per_trial: Sequence[dict[str, float]],
) -> dict[str, dict[str, Any]]:
    """Serialized per-metric Welford states of one block's trials.

    Folded sequentially in trial order, exactly like
    :func:`repro.sim.engine.aggregate_metrics` folds them — so the states
    are a pure function of the block's own ``per_trial`` dicts and the
    read path can recompute and compare them bit for bit.
    """
    accumulators: dict[str, Welford] = {}
    for metrics in per_trial:
        for key, value in metrics.items():
            accumulators.setdefault(key, Welford()).add(float(value))
    return {
        key: {"count": acc.count, "mean": acc.mean, "m2": acc.m2}
        for key, acc in sorted(accumulators.items())
    }


#: Parsed block triple: (start, stop, per-trial metric dicts).
_Block = tuple[int, int, list[dict[str, float]]]


class CellBlockStore:
    """Appendable trial-block storage for one cell's canonical trial stream.

    A budgeted cell's trials live as an ordered chain of *blocks* under
    ``<root>/<key[:2]>/<key>.blocks/<start>-<stop>.json`` where ``key`` is
    the :func:`canonical_key` of the cell's :func:`trial_stream_spec`.
    Each block carries its trial-index range, the raw per-trial metric
    dicts (the ground truth the adaptive driver refolds, which is what
    makes adaptive results bit-identical to fixed-budget runs), and the
    serialized Welford states of those trials (derived metadata the read
    path and :meth:`CellCache.verify` cross-check).

    Integrity contract: a chain is served only when every block parses,
    matches its filename range and Welford states, and the ranges tile
    ``[0, stop)`` contiguously with no gap or overlap — any violation
    makes the *whole cell* a miss (never a partial hit), counted through
    :attr:`CacheStats.errors`.

    This class satisfies the engine's
    :class:`repro.sim.engine.TrialBlockStore` protocol; its ``claim`` is
    unconditionally granted (single-process use).  Shard claim
    coordination wraps it (see :mod:`repro.sim.shard`).
    """

    def __init__(self, cache: CellCache, stream_key: str) -> None:
        self.cache = cache
        self.stream_key = stream_key

    @property
    def directory(self) -> pathlib.Path:
        """The on-disk block directory of this trial stream."""
        return self.cache.root / self.stream_key[:2] / f"{self.stream_key}.blocks"

    def _block_path(self, start: int, stop: int) -> pathlib.Path:
        # Zero-padded so lexicographic listing order equals trial order.
        return self.directory / f"{start:08d}-{stop:08d}.json"

    def _read_block(self, path: pathlib.Path) -> Optional[_Block]:
        """Parse and validate one block file; ``None`` when invalid.

        Raises :class:`FileNotFoundError` through (a vanished file is a
        concurrent prune, not corruption — callers skip it).
        """
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("stream_key") != self.stream_key:
                return None
            start, stop = int(data["start"]), int(data["stop"])
            if start < 0 or stop <= start:
                return None
            if path.name != f"{start:08d}-{stop:08d}.json":
                return None
            raw = data["per_trial"]
            if not isinstance(raw, list) or len(raw) != stop - start:
                return None
            per_trial = [
                {str(key): float(value) for key, value in metrics.items()}
                for metrics in raw
            ]
            if data.get("welford") != _block_welford_payload(per_trial):
                return None
            return start, stop, per_trial
        except FileNotFoundError:
            raise
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def _chain(self) -> Optional[list[_Block]]:
        """Every block of the stream as a validated contiguous chain.

        ``None`` signals an integrity violation (unreadable block, gap,
        overlap) — the whole cell must then be treated as a miss.  An
        empty directory is simply an empty (valid) chain.
        """
        directory = self.directory
        if not directory.is_dir():
            return []
        blocks: list[_Block] = []
        for path in sorted(directory.glob("*.json")):
            try:
                parsed = self._read_block(path)
            except FileNotFoundError:
                continue  # pruned concurrently: not part of the chain
            if parsed is None:
                return None
            blocks.append(parsed)
        blocks.sort(key=lambda block: block[0])
        expected = 0
        for start, stop, _ in blocks:
            if start != expected:
                return None
            expected = stop
        return blocks

    def load(self) -> list[_Block]:
        """The validated block chain, counting reuse into the cache stats.

        Any integrity violation yields ``[]`` (whole-cell miss) and bumps
        :attr:`CacheStats.errors` once.
        """
        chain = self._chain()
        if chain is None:
            self.cache.stats.errors += 1
            return []
        if chain:
            self.cache.stats.block_hits += len(chain)
            self.cache.stats.block_trials_reused += sum(
                stop - start for start, stop, _ in chain
            )
        return chain

    def peek(self, start: int, stop: int) -> Optional[list[dict[str, float]]]:
        """The per-trial dicts of block ``[start, stop)`` if present and valid."""
        path = self._block_path(start, stop)
        try:
            parsed = self._read_block(path)
        except FileNotFoundError:
            return None
        if parsed is None:
            self.cache.stats.errors += 1
            return None
        self.cache.stats.block_hits += 1
        self.cache.stats.block_trials_reused += stop - start
        return parsed[2]

    def append(
        self, start: int, stop: int, per_trial: Sequence[dict[str, float]]
    ) -> Optional[pathlib.Path]:
        """Persist block ``[start, stop)`` if it extends the chain; return path.

        A block that does not start exactly at the current chain coverage
        (or whose chain is invalid) is silently skipped — the caller keeps
        its in-memory trials either way, and skipping preserves the
        on-disk contiguity invariant instead of corrupting the stream.
        """
        if stop <= start or len(per_trial) != stop - start:
            raise InvalidParameterError(
                f"block [{start}, {stop}) needs exactly {stop - start} trials, "
                f"got {len(per_trial)}"
            )
        chain = self._chain()
        if chain is None:
            return None
        coverage = chain[-1][1] if chain else 0
        if start != coverage:
            return None
        path = self._block_path(start, stop)
        path.parent.mkdir(parents=True, exist_ok=True)
        block = {
            "stream_key": self.stream_key,
            "schema": CACHE_SCHEMA,
            "start": int(start),
            "stop": int(stop),
            "per_trial": list(per_trial),
            "welford": _block_welford_payload(per_trial),
        }
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(block, handle, separators=(",", ":"), default=float)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.cache.stats.block_stores += 1
        return path

    def claim(self, start: int, stop: int) -> bool:
        """Grant the block claim unconditionally (no peers to race)."""
        return True

    def release(self, start: int, stop: int) -> None:
        """Release a block claim — a no-op without claim coordination."""

    def problems(self) -> list[tuple[pathlib.Path, str]]:
        """Integrity problems of this stream's blocks, for ``cache verify``.

        Per-file problems (unreadable, range/Welford mismatch) and chain
        problems (gap or overlap, reported on the offending file).
        """
        directory = self.directory
        if not directory.is_dir():
            return []
        out: list[tuple[pathlib.Path, str]] = []
        parsed_blocks: list[tuple[pathlib.Path, _Block]] = []
        for path in sorted(directory.glob("*.json")):
            try:
                parsed = self._read_block(path)
            except FileNotFoundError:
                continue  # pruned concurrently: nothing to verify
            if parsed is None:
                out.append((path, "unreadable or inconsistent trial block"))
            else:
                parsed_blocks.append((path, parsed))
        parsed_blocks.sort(key=lambda item: item[1][0])
        expected = 0
        for path, (start, stop, _) in parsed_blocks:
            if start > expected:
                out.append(
                    (path, f"gapped trial blocks: expected start {expected}, got {start}")
                )
            elif start < expected:
                out.append(
                    (
                        path,
                        f"overlapping trial blocks: expected start {expected}, "
                        f"got {start}",
                    )
                )
            expected = max(expected, stop)
        return out


def resolve_cache(
    cache_dir: Optional[str | os.PathLike[str]] = None, no_cache: bool = False
) -> Optional[CellCache]:
    """Build the cache the CLI (and scripts) should use, or ``None``.

    ``no_cache`` wins over everything; otherwise ``cache_dir`` (explicit
    argument or ``--cache-dir``) is used, falling back to
    :func:`default_cache_dir`.
    """
    if no_cache:
        return None
    return CellCache(cache_dir if cache_dir is not None else default_cache_dir())
