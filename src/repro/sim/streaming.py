"""Streaming aggregation core: fold report batches into per-epoch state.

The paper's recovery pipeline is something an *aggregator* runs over
reports it has collected; the batch trial loop reaches it by materializing
a whole trial's reports first.  This module is the seam between the two:
an :class:`AggregatorState` folds report batches into incremental
``support_counts`` partial sums per epoch through the protocol's
explicit-state kernel
(:meth:`repro.protocols.base.FrequencyOracle.fold_support_counts`), the
exact arithmetic of the engine's chunked paths — so streaming any split of
the same reports is byte-equal to one batch ``support_counts`` pass.

State survives restarts and shards:

* :meth:`AggregatorState.merge` folds another aggregator's per-epoch sums
  in (support counting is a sum over reports, so shard order is
  irrelevant);
* :meth:`AggregatorState.snapshot` /
  :meth:`AggregatorState.restore` round-trip the state through a JSON-safe
  dict, pinned to the protocol's cache fingerprint so a snapshot can never
  silently resume under a different protocol configuration.

:mod:`repro.serve` builds the online recovery service on top of this
state; the engine keeps its one-shot wrappers
(:func:`repro.sim.engine.chunked_support_counts`) over the same kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError, ProtocolError
from repro.protocols.base import FrequencyOracle, decode_array, encode_array
from repro.sim.cache import canonical_key, fingerprint_object

#: Version tag of the :meth:`AggregatorState.snapshot` wire format; bumped
#: on incompatible layout changes so stale snapshots fail loudly.
SNAPSHOT_FORMAT = 1


def protocol_key(protocol: FrequencyOracle) -> str:
    """Canonical identity string of ``protocol`` for snapshot pinning.

    The cache layer's content fingerprint
    (:func:`repro.sim.cache.fingerprint_object` hashed through
    :func:`repro.sim.cache.canonical_key`): execution-only attributes
    (OLH's ``chunk_cells``) are excluded, distribution-shaping ones
    (``epsilon``, ``domain_size``, OLH's ``cohort``) are in — exactly the
    identity under which folded counts are interchangeable.
    """
    return canonical_key(fingerprint_object(protocol))


@dataclass
class EpochState:
    """Accumulated aggregation state of one epoch.

    ``support_counts`` is the running partial-sum vector (the explicit
    state of the streaming kernel), ``num_reports`` the reports folded
    into it, and ``batches`` the ingest calls that contributed — the
    latter purely observability, never part of the arithmetic.
    """

    support_counts: np.ndarray
    num_reports: int = 0
    batches: int = 0


@dataclass
class AggregatorState:
    """Per-(protocol, epoch) streaming ``support_counts`` accumulator.

    One instance is bound to one ``protocol`` configuration; report
    batches fold into per-``epoch`` partial sums via :meth:`ingest`.
    ``chunk_users`` bounds each fold's transient memory exactly like the
    engine's knob of the same name (``None`` =
    :data:`repro.protocols.base.DEFAULT_CHUNK_USERS`); it cannot change
    results.  Epoch names are free-form strings (a day, an hour bucket, a
    collection round) — the paper's aggregator collects one round at a
    time, and recovery runs per round.
    """

    protocol: FrequencyOracle
    chunk_users: Optional[int] = None
    epochs: dict[str, EpochState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_users is not None and int(self.chunk_users) < 1:
            raise InvalidParameterError(
                f"chunk_users must be >= 1 or None, got {self.chunk_users}"
            )
        self._protocol_key = protocol_key(self.protocol)

    @property
    def key(self) -> str:
        """The bound protocol's :func:`protocol_key` (snapshot identity)."""
        return self._protocol_key

    def epoch(self, name: str) -> EpochState:
        """The state of epoch ``name``, created zeroed on first touch."""
        state = self.epochs.get(name)
        if state is None:
            state = EpochState(support_counts=self.protocol.init_support_state())
            self.epochs[name] = state
        return state

    def epoch_names(self) -> list[str]:
        """All epochs seen so far, sorted (deterministic iteration order)."""
        return sorted(self.epochs)

    def ingest(self, name: str, reports: Any) -> int:
        """Fold one report batch into epoch ``name``; returns its size.

        Byte-equal to having aggregated the epoch's reports in one batch:
        the fold routes through the protocol's explicit-state kernel,
        which slices ``reports`` to at most ``chunk_users`` at a time, so
        ingest cost is bounded regardless of batch size.
        """
        state = self.epoch(name)
        n = self.protocol.num_reports(reports)
        self.protocol.fold_support_counts(
            state.support_counts, reports, chunk_users=self.chunk_users
        )
        state.num_reports += n
        state.batches += 1
        return n

    def support_counts(self, name: str) -> np.ndarray:
        """A copy of epoch ``name``'s accumulated ``support_counts``."""
        return self.epoch(name).support_counts.copy()

    def num_reports(self, name: str) -> int:
        """Reports folded into epoch ``name`` so far."""
        return self.epoch(name).num_reports

    def estimate_frequencies(self, name: str) -> np.ndarray:
        """Unbiased frequency estimates for epoch ``name`` (paper Eq. 11).

        Identical to ``protocol.aggregate`` over the epoch's full report
        batch, computed from the streamed partial sums instead.
        """
        state = self.epoch(name)
        return self.protocol.estimate_frequencies(
            state.support_counts, state.num_reports
        )

    def merge(self, other: "AggregatorState") -> None:
        """Fold another aggregator's per-epoch sums into this one.

        ``other`` must be bound to a fingerprint-identical protocol
        (support counts are only interchangeable under the same report
        distribution).  Shared epochs add their partial sums — support
        counting is a sum over reports, so shard boundaries and merge
        order are arithmetic no-ops.
        """
        if other.key != self.key:
            raise ProtocolError(
                "cannot merge aggregator state across protocol identities: "
                f"{self.key[:12]}... != {other.key[:12]}..."
            )
        for name in other.epoch_names():
            theirs = other.epochs[name]
            mine = self.epoch(name)
            mine.support_counts += theirs.support_counts
            mine.num_reports += theirs.num_reports
            mine.batches += theirs.batches

    def snapshot(self) -> dict[str, Any]:
        """JSON-safe snapshot of every epoch's accumulated state.

        Carries the :data:`SNAPSHOT_FORMAT` tag and the protocol's
        :func:`protocol_key`; :meth:`restore` refuses a snapshot whose key
        does not match the protocol it is asked to resume under.
        """
        return {
            "format": SNAPSHOT_FORMAT,
            "protocol": self._protocol_key,
            "chunk_users": self.chunk_users,
            "epochs": {
                name: {
                    "support_counts": encode_array(self.epochs[name].support_counts),
                    "num_reports": self.epochs[name].num_reports,
                    "batches": self.epochs[name].batches,
                }
                for name in self.epoch_names()
            },
        }

    @classmethod
    def restore(
        cls,
        snapshot: dict[str, Any],
        protocol: FrequencyOracle,
        chunk_users: Optional[int] = None,
    ) -> "AggregatorState":
        """Rebuild an aggregator from a :meth:`snapshot` dict.

        ``protocol`` must fingerprint to the key recorded in ``snapshot``
        (resuming under a different protocol configuration would silently
        mix incompatible counts); ``chunk_users`` is execution-only and
        defaults to the snapshot's recorded value.  Ingesting the
        not-yet-snapshotted remainder of a stream into the restored state
        yields byte-equal counts to an uninterrupted run.
        """
        if snapshot.get("format") != SNAPSHOT_FORMAT:
            raise InvalidParameterError(
                f"unsupported snapshot format {snapshot.get('format')!r}; "
                f"expected {SNAPSHOT_FORMAT}"
            )
        state = cls(
            protocol=protocol,
            chunk_users=snapshot.get("chunk_users") if chunk_users is None else chunk_users,
        )
        recorded = snapshot.get("protocol")
        if recorded != state.key:
            raise ProtocolError(
                "snapshot was taken under a different protocol identity: "
                f"{str(recorded)[:12]}... != {state.key[:12]}..."
            )
        for name, payload in sorted(snapshot.get("epochs", {}).items()):
            counts = decode_array(payload["support_counts"])
            if counts.shape != (protocol.domain_size,) or counts.dtype != np.int64:
                raise ProtocolError(
                    f"snapshot epoch {name!r} carries counts of shape "
                    f"{counts.shape} dtype {counts.dtype}; expected int64 "
                    f"({protocol.domain_size},)"
                )
            state.epochs[name] = EpochState(
                support_counts=counts,
                num_reports=int(payload["num_reports"]),
                batches=int(payload["batches"]),
            )
        return state


def fan_in(states: Sequence[AggregatorState]) -> AggregatorState:
    """Merge several collectors' states into one fresh aggregator.

    The multi-collector deployment shape: ``k`` collectors each fold a
    share of every epoch's reports, then a coordinator fans their states
    in.  The result is bound to the first state's protocol *instance* and
    is byte-equal to a single collector having ingested every batch —
    :meth:`AggregatorState.merge` is a per-epoch vector sum, so the
    collector partition and merge order cannot matter.  All states must
    share one protocol fingerprint (enforced by ``merge``).
    """
    if not states:
        raise InvalidParameterError("fan_in needs at least one aggregator state")
    merged = AggregatorState(states[0].protocol, chunk_users=states[0].chunk_users)
    for state in states:
        merged.merge(state)
    return merged


__all__ = [
    "SNAPSHOT_FORMAT",
    "AggregatorState",
    "EpochState",
    "fan_in",
    "protocol_key",
]
