"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure*_rows`` / ``table1_rows`` function reproduces one exhibit of
Section VI / VII and returns a list of flat row dicts (printable with
:func:`repro.sim.experiment.format_table`).  The benchmark suite and the
CLI are thin wrappers over these functions; DESIGN.md section 5 maps each
exhibit to its function and expected qualitative shape.

Scale notes: the paper runs 10 trials at full population.  The defaults
here are tuned so the full suite finishes in minutes on a laptop —
``sampled``-mode exhibits (those needing the Detection baseline or raw
reports) run at a scaled population, pure-aggregate exhibits run in
``fast`` mode.  Pass ``num_users=None`` for the paper's full populations.

Every exhibit takes ``workers=`` (trial fan-out over the process pool of
:mod:`repro.sim.engine`; ``None``/``0`` = all cores, results bit-identical
to ``workers=1``), and the fast-mode exhibits take ``chunk_users=`` to
switch to the bounded-memory exact simulation path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro._rng import RngLike, as_generator, spawn, spawn_sequences
from repro.attacks import (
    AdaptiveAttack,
    InputPoisoningAttack,
    ManipAttack,
    MGAAttack,
    MultiAttacker,
)
from repro.core.kmeans import KMeansDefense, recover_with_kmeans
from repro.core.recover import recover_frequencies
from repro.datasets import Dataset, fire_like, ipums_like
from repro.exceptions import InvalidParameterError
from repro.protocols import PROTOCOL_NAMES, make_protocol
from repro.sim.engine import parallel_map
from repro.sim.experiment import evaluate_recovery
from repro.sim.metrics import mse
from repro.sim.pipeline import SimulationMode, run_trial

#: Paper defaults (Section VI-A): epsilon, malicious fraction, number of
#: target items, server-side eta.
DEFAULT_EPSILON = 0.5
DEFAULT_BETA = 0.05
DEFAULT_R = 10
DEFAULT_ETA = 0.2


def load_dataset(name: str, num_users: Optional[int]) -> Dataset:
    """The two paper workloads by name, optionally rescaled."""
    key = name.strip().lower()
    if key in ("ipums", "ipums-like"):
        return ipums_like(num_users=num_users)
    if key in ("fire", "fire-like"):
        return fire_like(num_users=num_users)
    raise InvalidParameterError(f"unknown dataset {name!r}; use 'ipums' or 'fire'")


def _make_attack(kind: str, domain_size: int, rng: RngLike) -> object:
    gen = as_generator(rng)
    if kind == "manip":
        return ManipAttack(domain_size=domain_size, rng=gen)
    if kind == "mga":
        return MGAAttack(domain_size=domain_size, r=DEFAULT_R, rng=gen)
    if kind == "aa":
        return AdaptiveAttack(domain_size=domain_size, rng=gen)
    raise InvalidParameterError(f"unknown attack {kind!r}")


#: The (attack, protocol) cells of Figures 3-4: Manip is shown on GRR only
#: (matching the paper's x-axis), MGA and AA on all three protocols.
FIG3_CELLS: tuple[tuple[str, str], ...] = (
    ("manip", "grr"),
    ("mga", "grr"),
    ("mga", "oue"),
    ("mga", "olh"),
    ("aa", "grr"),
    ("aa", "oue"),
    ("aa", "olh"),
)


def figure3_rows(
    dataset_name: str = "ipums",
    num_users: Optional[int] = 40_000,
    trials: int = 5,
    epsilon: float = DEFAULT_EPSILON,
    beta: float = DEFAULT_BETA,
    eta: float = DEFAULT_ETA,
    rng: RngLike = 3,
    workers: Optional[int] = 1,
) -> list[dict[str, object]]:
    """Figure 3: MSE of LDPRecover/LDPRecover*/Detection per cell."""
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(FIG3_CELLS))
    for (attack_kind, protocol_name), cell_rng in zip(FIG3_CELLS, rngs):
        gen = as_generator(cell_rng)
        protocol = make_protocol(protocol_name, epsilon=epsilon, domain_size=dataset.domain_size)
        attack = _make_attack(attack_kind, dataset.domain_size, gen)
        evaluation = evaluate_recovery(
            dataset,
            protocol,
            attack,
            beta=beta,
            eta=eta,
            trials=trials,
            mode="sampled",
            with_detection=True,
            aa_top_k=DEFAULT_R // 2,
            rng=gen,
            workers=workers,
        )
        rows.append(
            {
                "cell": f"{attack_kind}-{protocol_name}",
                "mse_before": evaluation.mse_before,
                "mse_detection": evaluation.mse_detection,
                "mse_ldprecover": evaluation.mse_recover,
                "mse_ldprecover_star": evaluation.mse_recover_star,
            }
        )
    return rows


def figure4_rows(
    dataset_name: str = "ipums",
    num_users: Optional[int] = 40_000,
    trials: int = 5,
    epsilon: float = DEFAULT_EPSILON,
    beta: float = DEFAULT_BETA,
    eta: float = DEFAULT_ETA,
    rng: RngLike = 4,
    workers: Optional[int] = 1,
) -> list[dict[str, object]]:
    """Figure 4: frequency gain of MGA per protocol, before/after."""
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES))
    for protocol_name, cell_rng in zip(PROTOCOL_NAMES, rngs):
        gen = as_generator(cell_rng)
        protocol = make_protocol(protocol_name, epsilon=epsilon, domain_size=dataset.domain_size)
        attack = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
        evaluation = evaluate_recovery(
            dataset,
            protocol,
            attack,
            beta=beta,
            eta=eta,
            trials=trials,
            mode="sampled",
            with_detection=True,
            rng=gen,
            workers=workers,
        )
        rows.append(
            {
                "cell": f"mga-{protocol_name}",
                "fg_before": evaluation.fg_before,
                "fg_detection": evaluation.fg_detection,
                "fg_ldprecover": evaluation.fg_recover,
                "fg_ldprecover_star": evaluation.fg_recover_star,
            }
        )
    return rows


#: Parameter grids of Figures 5-6 (Section VI-D).
BETA_GRID = (0.001, 0.005, 0.01, 0.05, 0.1)
EPSILON_GRID = (0.1, 0.2, 0.4, 0.8, 1.6)
ETA_GRID = (0.01, 0.05, 0.1, 0.2, 0.4)


def sweep_rows(
    dataset_name: str,
    parameter: str,
    values: Iterable[float] = (),
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 5,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
) -> list[dict[str, object]]:
    """Figures 5-6: MSE under AA while one of (beta, epsilon, eta) varies.

    The remaining parameters stay at the paper defaults.  Runs in ``fast``
    mode at full population unless ``num_users`` overrides; ``chunk_users``
    switches to the chunked exact simulation instead.
    """
    grids = {"beta": BETA_GRID, "epsilon": EPSILON_GRID, "eta": ETA_GRID}
    if parameter not in grids:
        raise InvalidParameterError(
            f"parameter must be one of {sorted(grids)}, got {parameter!r}"
        )
    values = tuple(values) or grids[parameter]
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(values))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for value in values:
            gen = as_generator(rngs[idx])
            idx += 1
            beta = value if parameter == "beta" else DEFAULT_BETA
            epsilon = value if parameter == "epsilon" else DEFAULT_EPSILON
            eta = value if parameter == "eta" else DEFAULT_ETA
            protocol = make_protocol(
                protocol_name, epsilon=epsilon, domain_size=dataset.domain_size
            )
            attack = AdaptiveAttack(domain_size=dataset.domain_size, rng=gen)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=eta,
                trials=trials,
                mode="fast",
                aa_top_k=DEFAULT_R // 2,
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
            )
            rows.append(
                {
                    "cell": f"aa-{protocol_name}",
                    parameter: value,
                    "mse_before": evaluation.mse_before,
                    "mse_ldprecover": evaluation.mse_recover,
                    "mse_ldprecover_star": evaluation.mse_recover_star,
                }
            )
    return rows


FIG7_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)


def figure7_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 7,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
) -> list[dict[str, object]]:
    """Figure 7: MSE of estimated vs. true malicious frequencies (IPUMS)."""
    dataset = load_dataset("ipums", num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG7_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG7_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = make_protocol(
                protocol_name, epsilon=DEFAULT_EPSILON, domain_size=dataset.domain_size
            )
            attack = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=DEFAULT_ETA,
                trials=trials,
                mode="fast",
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
            )
            rows.append(
                {
                    "cell": f"mga-{protocol_name}",
                    "beta": beta,
                    "malicious_mse_ldprecover": evaluation.mse_malicious_estimate,
                    "malicious_mse_ldprecover_star": evaluation.mse_malicious_estimate_star,
                }
            )
    return rows


FIG8_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)


@dataclass(frozen=True)
class _Fig8Task:
    """Picklable per-trial unit of Figure 8 (one MGA + one IPA round)."""

    dataset: Dataset
    protocol: object
    mga: MGAAttack
    ipa: InputPoisoningAttack
    beta: float
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _figure8_trial(task: _Fig8Task) -> tuple[float, float]:
    """One Figure 8 trial: poisoned MSE of MGA and of its IPA variant."""
    gen = np.random.default_rng(task.seed)
    t1 = run_trial(
        task.dataset, task.protocol, task.mga, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    t2 = run_trial(
        task.dataset, task.protocol, task.ipa, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    return (
        mse(t1.true_frequencies, t1.poisoned_frequencies),
        mse(t2.true_frequencies, t2.poisoned_frequencies),
    )


def figure8_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 8,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
) -> list[dict[str, object]]:
    """Figure 8: poisoning strength of MGA vs. MGA-IPA (no recovery)."""
    dataset = load_dataset("ipums", num_users)
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG8_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG8_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = make_protocol(
                protocol_name, epsilon=DEFAULT_EPSILON, domain_size=dataset.domain_size
            )
            mga = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            ipa = InputPoisoningAttack(mga)
            tasks = [
                _Fig8Task(dataset, protocol, mga, ipa, beta, mode, chunk_users, seed)
                for seed in spawn_sequences(gen, trials)
            ]
            pairs = parallel_map(_figure8_trial, tasks, workers=workers)
            rows.append(
                {
                    "cell": f"{protocol_name}",
                    "beta": beta,
                    "mse_mga": float(np.mean([p[0] for p in pairs])),
                    "mse_mga_ipa": float(np.mean([p[1] for p in pairs])),
                }
            )
    return rows


FIG9_XIS = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class _Fig9Task:
    """Picklable per-trial unit of Figure 9 (one k-means defense round)."""

    dataset: Dataset
    protocol: object
    attack: InputPoisoningAttack
    beta: float
    xi: float
    seed: np.random.SeedSequence


def _figure9_trial(task: _Fig9Task) -> tuple[float, float, float]:
    """One Figure 9 trial: before / k-means-only / LDPRecover-KM MSE."""
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, task.attack, beta=task.beta, mode="sampled", rng=gen
    )
    truth = trial.true_frequencies
    defense = KMeansDefense(sample_rate=task.xi, num_subsets=10)
    recovery, km_result = recover_with_kmeans(
        task.protocol, trial.reports, defense=defense, rng=gen
    )
    return (
        mse(truth, trial.poisoned_frequencies),
        mse(truth, km_result.frequencies),
        mse(truth, recovery.frequencies),
    )


def figure9_rows(
    num_users: Optional[int] = 20_000,
    trials: int = 3,
    beta: float = DEFAULT_BETA,
    rng: RngLike = 9,
    workers: Optional[int] = 1,
) -> list[dict[str, object]]:
    """Figure 9: LDPRecover-KM vs. plain k-means under MGA-IPA (IPUMS)."""
    dataset = load_dataset("ipums", num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG9_XIS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for xi in FIG9_XIS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = make_protocol(
                protocol_name, epsilon=DEFAULT_EPSILON, domain_size=dataset.domain_size
            )
            mga = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            attack = InputPoisoningAttack(mga)
            tasks = [
                _Fig9Task(dataset, protocol, attack, beta, xi, seed)
                for seed in spawn_sequences(gen, trials)
            ]
            triples = parallel_map(_figure9_trial, tasks, workers=workers)
            rows.append(
                {
                    "cell": f"{protocol_name}",
                    "xi": xi,
                    "mse_before": float(np.mean([t[0] for t in triples])),
                    "mse_kmeans": float(np.mean([t[1] for t in triples])),
                    "mse_ldprecover_km": float(np.mean([t[2] for t in triples])),
                }
            )
    return rows


FIG10_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)
FIG10_NUM_ATTACKERS = 5


def figure10_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 10,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
) -> list[dict[str, object]]:
    """Figure 10: LDPRecover against 5 independent adaptive attackers."""
    dataset = load_dataset("ipums", num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG10_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG10_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = make_protocol(
                protocol_name, epsilon=DEFAULT_EPSILON, domain_size=dataset.domain_size
            )
            attackers = [
                AdaptiveAttack(domain_size=dataset.domain_size, rng=child)
                for child in spawn(gen, FIG10_NUM_ATTACKERS)
            ]
            attack = MultiAttacker(attackers)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=DEFAULT_ETA,
                trials=trials,
                mode="fast",
                with_star=False,
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
            )
            rows.append(
                {
                    "cell": f"mul-aa-{protocol_name}",
                    "beta": beta,
                    "mse_before": evaluation.mse_before,
                    "mse_ldprecover": evaluation.mse_recover,
                }
            )
    return rows


@dataclass(frozen=True)
class _Table1Task:
    """Picklable per-trial unit of Table I (one unpoisoned recovery round)."""

    dataset: Dataset
    protocol: object
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _table1_trial(task: _Table1Task) -> tuple[float, float]:
    """One Table I trial: MSE before and after recovery, beta=0."""
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, None, beta=0.0, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    truth = trial.true_frequencies
    before = mse(truth, trial.poisoned_frequencies)
    recovery = recover_frequencies(trial.poisoned_frequencies, task.protocol, eta=DEFAULT_ETA)
    return before, mse(truth, recovery.frequencies)


def table1_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 1,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
) -> list[dict[str, object]]:
    """Table I: LDPRecover executed on *unpoisoned* frequencies (beta=0)."""
    rows = []
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    datasets = [load_dataset("ipums", num_users), load_dataset("fire", num_users)]
    rngs = spawn(rng, len(datasets) * len(PROTOCOL_NAMES))
    idx = 0
    for dataset in datasets:
        for protocol_name in PROTOCOL_NAMES:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = make_protocol(
                protocol_name, epsilon=DEFAULT_EPSILON, domain_size=dataset.domain_size
            )
            tasks = [
                _Table1Task(dataset, protocol, mode, chunk_users, seed)
                for seed in spawn_sequences(gen, trials)
            ]
            pairs = parallel_map(_table1_trial, tasks, workers=workers)
            rows.append(
                {
                    "dataset": dataset.name,
                    "protocol": protocol_name,
                    "mse_before_recovery": float(np.mean([p[0] for p in pairs])),
                    "mse_after_recovery": float(np.mean([p[1] for p in pairs])),
                }
            )
    return rows
