"""Regeneration of every table and figure in the paper's evaluation.

Each ``figure*_rows`` / ``table1_rows`` function reproduces one exhibit of
Section VI / VII and returns a list of flat row dicts (printable with
:func:`repro.sim.experiment.format_table`).  The benchmark suite and the
CLI are thin wrappers over these functions; ``docs/exhibits.md`` maps each
exhibit to its function, regenerating CLI command, and emitted columns.

Scale notes: the paper runs 10 trials at full population.  The defaults
here are tuned so the full suite finishes in minutes on a laptop —
``sampled``-mode exhibits (those needing the Detection baseline or raw
reports) run at a scaled population, pure-aggregate exhibits run in
``fast`` mode.  Pass ``num_users=None`` for the paper's full populations.

Every exhibit takes ``workers=`` (trial fan-out over the process pool of
:mod:`repro.sim.engine`; ``None``/``0`` = all cores, results bit-identical
to ``workers=1``), and the fast-mode exhibits take ``chunk_users=`` to
switch to the bounded-memory exact simulation path.  Every exhibit also
takes ``olh_cohort=``: its OLH cells then draw hash keys from cohorts of
that many shared seeds, collapsing report-level aggregation from O(n*d)
to O(K*d + n) per chunk (a different report distribution, hence a
different cache key — see :class:`repro.protocols.OLH`).

Every exhibit also takes ``cache=`` (a
:class:`repro.sim.cache.CellCache`): completed cells are keyed by the
canonical hash of their full spec and served from disk on repeat runs, so
an interrupted sweep resumes from where it stopped and warm regeneration
performs zero simulation trials.  That warm path is also how
:mod:`repro.sim.shard` merges multi-machine sweeps: against a fully
populated cache every generator renders its rows purely from cached
payloads, bit-identical to the run that produced them.  Each metric
column is accompanied by a ``<column>±`` companion holding the 95%
confidence half-width of the trial average (``None``/``-`` when a single
trial contributed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

import numpy as np

from repro._rng import RngLike, as_generator, spawn, spawn_sequences
from repro.attacks import (
    AdaptiveAttack,
    InputPoisoningAttack,
    ManipAttack,
    MGAAttack,
    MultiAttacker,
)
from repro.attacks.base import PoisoningAttack
from repro.core.kmeans import KMeansDefense, recover_with_kmeans
from repro.core.recover import recover_frequencies
from repro.datasets import Dataset, fire_like, ipums_like
from repro.exceptions import InvalidParameterError
from repro.protocols import PROTOCOL_NAMES, FrequencyOracle, make_protocol
from repro.sim.cache import (
    CellCache,
    resolved_cohort_chunk,
    row_cell_spec,
    trial_stream_spec,
)
from repro.sim.engine import (
    MetricStats,
    TrialBudget,
    aggregate_metrics,
    parallel_map,
    run_adaptive_trials,
)
from repro.sim.experiment import RecoveryEvaluation, evaluate_recovery
from repro.sim.metrics import mse
from repro.sim.pipeline import SimulationMode, run_trial

#: Paper defaults (Section VI-A): epsilon, malicious fraction, number of
#: target items, server-side eta.
DEFAULT_EPSILON = 0.5
DEFAULT_BETA = 0.05
DEFAULT_R = 10
DEFAULT_ETA = 0.2


def load_dataset(name: str, num_users: Optional[int]) -> Dataset:
    """The two paper workloads by ``name`` (``"ipums"`` / ``"fire"``).

    ``num_users`` rescales the population while preserving the frequency
    profile; ``None`` keeps the paper's full population.
    """
    key = name.strip().lower()
    if key in ("ipums", "ipums-like"):
        return ipums_like(num_users=num_users)
    if key in ("fire", "fire-like"):
        return fire_like(num_users=num_users)
    raise InvalidParameterError(f"unknown dataset {name!r}; use 'ipums' or 'fire'")


# NOTE: the cell-row toolkit below (_cell_protocol, _cohort_for,
# _row_cell_params, _metric_columns, _stat_columns, _cached_cell_row) is
# shared infrastructure: repro.sim.scenarios builds its registered
# scenario exhibits on these helpers, so renames/signature changes must
# update both modules (the scenario test suite pins the contract).
def _cell_protocol(
    name: str, epsilon: float, domain_size: int, olh_cohort: Optional[int] = None
) -> FrequencyOracle:
    """Build one cell's protocol; ``olh_cohort`` applies to OLH cells only.

    The cohort knob is meaningless for GRR/OUE, so exhibits that iterate
    every protocol forward it here and only the hashing-based cells pick
    it up (entering their cache keys through the protocol fingerprint).
    Used directly by the report-level (``sampled``-mode) exhibits; the
    fast-capable exhibits instead pass :func:`_cohort_for` through
    :func:`~repro.sim.experiment.evaluate_recovery`, which applies the
    cohort only when the cell actually materializes reports.
    """
    protocol = make_protocol(name, epsilon=epsilon, domain_size=domain_size)
    cohort = _cohort_for(protocol, olh_cohort)
    if cohort is not None:
        # ``with_cohort`` only exists on cohort-capable oracles (OLH); the
        # _cohort_for gate above guarantees the hook is present here.
        protocol = getattr(protocol, "with_cohort")(cohort)
    return protocol


def _cohort_for(protocol: object, olh_cohort: Optional[int]) -> Optional[int]:
    """``olh_cohort`` when ``protocol`` supports seed cohorts, else ``None``.

    Capability-based (``with_cohort`` hook) rather than a name list, so a
    newly registered cohort-capable protocol picks the knob up without
    touching the exhibit generators.
    """
    if olh_cohort is None or not hasattr(protocol, "with_cohort"):
        return None
    return olh_cohort


def _row_cell_params(
    protocol: FrequencyOracle,
    mode: SimulationMode,
    chunk_users: Optional[int],
    /,
    **base: object,
) -> dict[str, object]:
    """Spec params of one row cell (Figure 8 / Table I), cohort-aware.

    Adds ``cohort_chunk_users`` (the resolved chunk schedule) exactly when
    :func:`repro.sim.cache.resolved_cohort_chunk` says it shapes the
    cell's report distribution.  The leading arguments are positional-only
    so ``base`` may itself carry a ``mode`` spec field.
    """
    params: dict[str, object] = dict(base)
    cohort_chunk = resolved_cohort_chunk(protocol, mode, chunk_users)
    if cohort_chunk is not None:
        params["cohort_chunk_users"] = cohort_chunk
    return params


def _make_attack(kind: str, domain_size: int, rng: RngLike) -> PoisoningAttack:
    gen = as_generator(rng)
    if kind == "manip":
        return ManipAttack(domain_size=domain_size, rng=gen)
    if kind == "mga":
        return MGAAttack(domain_size=domain_size, r=DEFAULT_R, rng=gen)
    if kind == "aa":
        return AdaptiveAttack(domain_size=domain_size, rng=gen)
    raise InvalidParameterError(f"unknown attack {kind!r}")


def _metric_columns(
    evaluation: RecoveryEvaluation, mapping: dict[str, str]
) -> dict[str, object]:
    """Columns ``{col: value, col±: ci95}`` for evaluation-backed rows.

    ``mapping`` maps output column names to
    :class:`~repro.sim.experiment.RecoveryEvaluation` metric names; each
    column is immediately followed by its ``±`` confidence companion.
    """
    out: dict[str, object] = {}
    for column, metric in mapping.items():
        out[column] = getattr(evaluation, metric)
        out[f"{column}±"] = evaluation.ci95(metric)
    return out


def _stat_columns(
    stats: dict[str, MetricStats], columns: Iterable[str]
) -> dict[str, object]:
    """Columns ``{col: mean, col±: ci95}`` from aggregated trial stats."""
    out: dict[str, object] = {}
    for column in columns:
        entry = stats[column]
        out[column] = entry.mean
        out[f"{column}±"] = entry.ci95_halfwidth
    return out


def _cached_cell_row(
    cache: Optional[CellCache],
    spec: Optional[dict[str, object]],
    compute: Callable[[], dict[str, object]],
    meta: Optional[Callable[[], Optional[dict[str, object]]]] = None,
) -> dict[str, object]:
    """Serve one exhibit row from ``cache`` under ``spec``, or ``compute``
    and store it — the shared lookup/store protocol of the generators
    whose cells do not go through :func:`evaluate_recovery`.  ``meta`` is
    an optional zero-argument callable evaluated *after* ``compute`` whose
    result (adaptive-budget trial counts, achieved half-widths) is stored
    on the entry next to — never inside — the row payload."""
    if cache is not None and spec is not None:
        cached = cache.get(spec)
        if cached is not None:
            return cached
    row = compute()
    if cache is not None and spec is not None:
        cache.put(spec, row, meta=None if meta is None else meta())
    return row


def _cell_trial_stats(
    metrics_fn: Callable[[object], dict[str, float]],
    task_for: Callable[[np.random.SeedSequence], object],
    seeds: list[np.random.SeedSequence],
    workers: Optional[int],
    budget: Optional[TrialBudget],
    cache: Optional[CellCache],
    spec: Optional[dict[str, object]],
) -> tuple[dict[str, MetricStats], Optional[dict[str, object]]]:
    """Aggregate one row cell's trial metrics, fixed-budget or adaptive.

    With ``budget`` ``None`` every seed in ``seeds`` becomes one task via
    ``task_for`` and runs through :func:`parallel_map` with
    ``metrics_fn`` — the historical fixed-budget path, byte-identical
    cache keys and all.  With a :class:`~repro.sim.engine.TrialBudget`,
    trials run in batches until the budget's stopping rule is met,
    resuming from (and appending to) the cell's trial-block store when
    ``cache`` and the cell's summary ``spec`` are given.  Returns the
    aggregated stats plus the adaptive outcome metadata (``None`` on the
    fixed path).
    """
    if budget is None:
        tasks = [task_for(seed) for seed in seeds]
        stats = aggregate_metrics(parallel_map(metrics_fn, tasks, workers=workers))
        return stats, None
    store = None
    if cache is not None and spec is not None:
        store = cache.block_store(trial_stream_spec(spec))
    outcome = run_adaptive_trials(
        budget, metrics_fn, task_for, seeds, workers=workers, store=store
    )
    return outcome.stats, outcome.meta()


#: The (attack, protocol) cells of Figures 3-4: Manip is shown on GRR only
#: (matching the paper's x-axis), MGA and AA on all three protocols.
FIG3_CELLS: tuple[tuple[str, str], ...] = (
    ("manip", "grr"),
    ("mga", "grr"),
    ("mga", "oue"),
    ("mga", "olh"),
    ("aa", "grr"),
    ("aa", "oue"),
    ("aa", "olh"),
)


def figure3_rows(
    dataset_name: str = "ipums",
    num_users: Optional[int] = 40_000,
    trials: int = 5,
    epsilon: float = DEFAULT_EPSILON,
    beta: float = DEFAULT_BETA,
    eta: float = DEFAULT_ETA,
    rng: RngLike = 3,
    workers: Optional[int] = 1,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 3: MSE of LDPRecover/LDPRecover*/Detection per cell.

    Parameters
    ----------
    dataset_name:
        Workload for :func:`load_dataset` (``"ipums"`` or ``"fire"``).
    num_users:
        Population rescale (``None`` = paper scale); sampled-mode cost is
        O(``num_users``) so the default is reduced.
    trials:
        Independent rounds averaged per cell.
    epsilon:
        Privacy budget of every protocol cell.
    beta:
        Malicious fraction.
    eta:
        LDPRecover zero-threshold.
    rng:
        Seed or generator; one independent child per cell.
    workers:
        Trial-level process fan-out (``None``/``0`` = all cores).
    olh_cohort:
        Seed-cohort size for the OLH cells (shared hash seeds per perturb
        batch; changes those cells' cache keys).
    cache:
        Optional cell cache; completed cells are reused across runs.
    budget:
        Optional :class:`~repro.sim.engine.TrialBudget`; each cell then
        runs trials adaptively until its CI target is met (``trials`` is
        superseded by the budget's checkpoints).
    """
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(FIG3_CELLS))
    for (attack_kind, protocol_name), cell_rng in zip(FIG3_CELLS, rngs):
        gen = as_generator(cell_rng)
        protocol = _cell_protocol(protocol_name, epsilon, dataset.domain_size, olh_cohort)
        attack = _make_attack(attack_kind, dataset.domain_size, gen)
        evaluation = evaluate_recovery(
            dataset,
            protocol,
            attack,
            beta=beta,
            eta=eta,
            trials=trials,
            mode="sampled",
            with_detection=True,
            aa_top_k=DEFAULT_R // 2,
            rng=gen,
            workers=workers,
            cache=cache,
            budget=budget,
        )
        rows.append(
            {
                "cell": f"{attack_kind}-{protocol_name}",
                **_metric_columns(
                    evaluation,
                    {
                        "mse_before": "mse_before",
                        "mse_detection": "mse_detection",
                        "mse_ldprecover": "mse_recover",
                        "mse_ldprecover_star": "mse_recover_star",
                    },
                ),
            }
        )
    return rows


def figure4_rows(
    dataset_name: str = "ipums",
    num_users: Optional[int] = 40_000,
    trials: int = 5,
    epsilon: float = DEFAULT_EPSILON,
    beta: float = DEFAULT_BETA,
    eta: float = DEFAULT_ETA,
    rng: RngLike = 4,
    workers: Optional[int] = 1,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 4: frequency gain of MGA per protocol, before/after.

    Parameters match :func:`figure3_rows`: ``dataset_name`` /
    ``num_users`` pick and rescale the workload, ``trials`` rounds are
    averaged per cell at privacy budget ``epsilon`` with malicious
    fraction ``beta`` and recovery threshold ``eta``; ``rng`` seeds the
    cells, ``workers`` fans trials out, ``olh_cohort`` switches the OLH
    cell to seed-cohort perturbation, ``cache`` reuses completed cells,
    and ``budget`` switches the cells to adaptive CI-targeted trial
    allocation.
    """
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES))
    for protocol_name, cell_rng in zip(PROTOCOL_NAMES, rngs):
        gen = as_generator(cell_rng)
        protocol = _cell_protocol(protocol_name, epsilon, dataset.domain_size, olh_cohort)
        attack = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
        evaluation = evaluate_recovery(
            dataset,
            protocol,
            attack,
            beta=beta,
            eta=eta,
            trials=trials,
            mode="sampled",
            with_detection=True,
            rng=gen,
            workers=workers,
            cache=cache,
            budget=budget,
        )
        rows.append(
            {
                "cell": f"mga-{protocol_name}",
                **_metric_columns(
                    evaluation,
                    {
                        "fg_before": "fg_before",
                        "fg_detection": "fg_detection",
                        "fg_ldprecover": "fg_recover",
                        "fg_ldprecover_star": "fg_recover_star",
                    },
                ),
            }
        )
    return rows


#: Parameter grids of Figures 5-6 (Section VI-D).
BETA_GRID = (0.001, 0.005, 0.01, 0.05, 0.1)
EPSILON_GRID = (0.1, 0.2, 0.4, 0.8, 1.6)
ETA_GRID = (0.01, 0.05, 0.1, 0.2, 0.4)


def sweep_rows(
    dataset_name: str,
    parameter: str,
    values: Iterable[float] = (),
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 5,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figures 5-6: MSE under AA while one of (beta, epsilon, eta) varies.

    Parameters
    ----------
    dataset_name:
        Workload (``"ipums"`` for Figure 5, ``"fire"`` for Figure 6).
    parameter:
        The swept knob: ``"beta"``, ``"epsilon"`` or ``"eta"``; the
        remaining two stay at the paper defaults.
    values:
        Grid override; empty selects the paper grid of ``parameter``.
    num_users:
        Population rescale (``None`` = paper scale).
    trials:
        Independent rounds averaged per cell.
    rng:
        Seed or generator; one independent child per (protocol, value).
    workers:
        Trial-level process fan-out (``None``/``0`` = all cores).
    chunk_users:
        Switch the ``fast`` cells to the bounded-memory exact simulation,
        this many users per chunk.
    olh_cohort:
        Seed-cohort size for the OLH cells (shared hash seeds per perturb
        batch; changes those cells' cache keys).
    cache:
        Optional cell cache — this is the exhibit where resumable sweeps
        pay off most: an interrupted grid rerun skips completed cells.
    budget:
        Optional :class:`~repro.sim.engine.TrialBudget`; each grid cell
        then stops as soon as its 95% CI half-widths reach the target.
    """
    grids = {"beta": BETA_GRID, "epsilon": EPSILON_GRID, "eta": ETA_GRID}
    if parameter not in grids:
        raise InvalidParameterError(
            f"parameter must be one of {sorted(grids)}, got {parameter!r}"
        )
    values = tuple(values) or grids[parameter]
    dataset = load_dataset(dataset_name, num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(values))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for value in values:
            gen = as_generator(rngs[idx])
            idx += 1
            beta = value if parameter == "beta" else DEFAULT_BETA
            epsilon = value if parameter == "epsilon" else DEFAULT_EPSILON
            eta = value if parameter == "eta" else DEFAULT_ETA
            protocol = _cell_protocol(protocol_name, epsilon, dataset.domain_size)
            attack = AdaptiveAttack(domain_size=dataset.domain_size, rng=gen)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=eta,
                trials=trials,
                mode="fast",
                aa_top_k=DEFAULT_R // 2,
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
                olh_cohort=_cohort_for(protocol, olh_cohort),
                cache=cache,
                budget=budget,
            )
            rows.append(
                {
                    "cell": f"aa-{protocol_name}",
                    parameter: value,
                    **_metric_columns(
                        evaluation,
                        {
                            "mse_before": "mse_before",
                            "mse_ldprecover": "mse_recover",
                            "mse_ldprecover_star": "mse_recover_star",
                        },
                    ),
                }
            )
    return rows


FIG7_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)


def figure7_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 7,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 7: MSE of estimated vs. true malicious frequencies (IPUMS).

    ``num_users`` rescales the population, ``trials`` rounds are averaged
    per (protocol, beta) cell, ``rng`` seeds the cells, ``workers`` fans
    trials over a process pool, ``chunk_users`` selects the bounded-memory
    exact path, ``olh_cohort`` switches the OLH cells to seed-cohort
    perturbation, ``cache`` reuses completed cells across runs, and
    ``budget`` switches the cells to adaptive CI-targeted trial
    allocation.
    """
    dataset = load_dataset("ipums", num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG7_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG7_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = _cell_protocol(protocol_name, DEFAULT_EPSILON, dataset.domain_size)
            attack = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=DEFAULT_ETA,
                trials=trials,
                mode="fast",
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
                olh_cohort=_cohort_for(protocol, olh_cohort),
                cache=cache,
                budget=budget,
            )
            rows.append(
                {
                    "cell": f"mga-{protocol_name}",
                    "beta": beta,
                    **_metric_columns(
                        evaluation,
                        {
                            "malicious_mse_ldprecover": "mse_malicious_estimate",
                            "malicious_mse_ldprecover_star": "mse_malicious_estimate_star",
                        },
                    ),
                }
            )
    return rows


FIG8_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)


@dataclass(frozen=True)
class _Fig8Task:
    """Picklable per-trial unit of Figure 8 (one MGA + one IPA round)."""

    dataset: Dataset
    protocol: FrequencyOracle
    mga: MGAAttack
    ipa: InputPoisoningAttack
    beta: float
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _figure8_trial(task: _Fig8Task) -> dict[str, float]:
    """One Figure 8 trial: poisoned MSE of MGA and of its IPA variant."""
    gen = np.random.default_rng(task.seed)
    t1 = run_trial(
        task.dataset, task.protocol, task.mga, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    t2 = run_trial(
        task.dataset, task.protocol, task.ipa, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    return {
        "mse_mga": mse(t1.true_frequencies, t1.poisoned_frequencies),
        "mse_mga_ipa": mse(t2.true_frequencies, t2.poisoned_frequencies),
    }


def figure8_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 8,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 8: poisoning strength of MGA vs. MGA-IPA (no recovery).

    ``num_users`` rescales the IPUMS population, ``trials`` MGA+IPA round
    pairs are averaged per (protocol, beta) cell, ``rng`` seeds the cells,
    ``workers`` fans trials out, ``chunk_users`` selects the chunked exact
    simulation, ``olh_cohort`` switches the OLH cells to seed-cohort
    perturbation, ``cache`` reuses completed cells, and ``budget``
    switches the cells to adaptive CI-targeted trial allocation over the
    same canonical seed stream (cached trial blocks are resumed and
    extended rather than recomputed).
    """
    dataset = load_dataset("ipums", num_users)
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    columns = ("mse_mga", "mse_mga_ipa")
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG8_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG8_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            # Cohort mode only exists at the report level: fast-mode cells
            # sample marginals, so the knob is a no-op (and key-neutral).
            protocol = _cell_protocol(
                protocol_name,
                DEFAULT_EPSILON,
                dataset.domain_size,
                olh_cohort if mode == "chunked" else None,
            )
            mga = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            ipa = InputPoisoningAttack(mga)
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                params = _row_cell_params(protocol, mode, chunk_users, beta=beta, mode=mode)
                spec = row_cell_spec(
                    "figure8", dataset, protocol, (mga, ipa), params, seeds
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> _Fig8Task:
                return _Fig8Task(dataset, protocol, mga, ipa, beta, mode, chunk_users, seed)

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                stats, cell_meta[0] = _cell_trial_stats(
                    _figure8_trial, task_for, seeds, workers, budget, cache, spec
                )
                return {
                    "cell": f"{protocol_name}",
                    "beta": beta,
                    **_stat_columns(stats, columns),
                }

            rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows


FIG9_XIS = (0.1, 0.3, 0.5, 0.7, 0.9)
FIG9_NUM_SUBSETS = 10


@dataclass(frozen=True)
class _Fig9Task:
    """Picklable per-trial unit of Figure 9 (one k-means defense round)."""

    dataset: Dataset
    protocol: FrequencyOracle
    attack: InputPoisoningAttack
    beta: float
    xi: float
    seed: np.random.SeedSequence


def _figure9_trial(task: _Fig9Task) -> dict[str, float]:
    """One Figure 9 trial: before / k-means-only / LDPRecover-KM MSE."""
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, task.attack, beta=task.beta, mode="sampled", rng=gen
    )
    truth = trial.true_frequencies
    defense = KMeansDefense(sample_rate=task.xi, num_subsets=FIG9_NUM_SUBSETS)
    recovery, km_result = recover_with_kmeans(
        task.protocol, trial.reports, defense=defense, rng=gen
    )
    return {
        "mse_before": mse(truth, trial.poisoned_frequencies),
        "mse_kmeans": mse(truth, km_result.frequencies),
        "mse_ldprecover_km": mse(truth, recovery.frequencies),
    }


def figure9_rows(
    num_users: Optional[int] = 20_000,
    trials: int = 3,
    beta: float = DEFAULT_BETA,
    rng: RngLike = 9,
    workers: Optional[int] = 1,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 9: LDPRecover-KM vs. plain k-means under MGA-IPA (IPUMS).

    ``num_users`` rescales the population (sampled mode, so reduced by
    default), ``trials`` rounds are averaged per (protocol, xi) cell at
    malicious fraction ``beta``, ``rng`` seeds the cells, ``workers``
    fans trials out, ``olh_cohort`` switches the OLH cells to seed-cohort
    perturbation, ``cache`` reuses completed cells, and ``budget``
    switches the cells to adaptive CI-targeted trial allocation.
    """
    dataset = load_dataset("ipums", num_users)
    columns = ("mse_before", "mse_kmeans", "mse_ldprecover_km")
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG9_XIS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for xi in FIG9_XIS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = _cell_protocol(
                protocol_name, DEFAULT_EPSILON, dataset.domain_size, olh_cohort
            )
            mga = MGAAttack(domain_size=dataset.domain_size, r=DEFAULT_R, rng=gen)
            attack = InputPoisoningAttack(mga)
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                spec = row_cell_spec(
                    "figure9",
                    dataset,
                    protocol,
                    (attack,),
                    {
                        "beta": beta,
                        "xi": xi,
                        "num_subsets": FIG9_NUM_SUBSETS,
                        "mode": "sampled",
                    },
                    seeds,
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> _Fig9Task:
                return _Fig9Task(dataset, protocol, attack, beta, xi, seed)

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                stats, cell_meta[0] = _cell_trial_stats(
                    _figure9_trial, task_for, seeds, workers, budget, cache, spec
                )
                return {
                    "cell": f"{protocol_name}",
                    "xi": xi,
                    **_stat_columns(stats, columns),
                }

            rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows


FIG10_BETAS = (0.05, 0.1, 0.15, 0.2, 0.25)
FIG10_NUM_ATTACKERS = 5


def figure10_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 10,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Figure 10: LDPRecover against 5 independent adaptive attackers.

    ``num_users`` rescales the IPUMS population, ``trials`` rounds are
    averaged per (protocol, beta) cell, ``rng`` seeds the cells (and the
    independent attackers), ``workers`` fans trials out, ``chunk_users``
    selects the chunked exact simulation, ``olh_cohort`` switches the OLH
    cells to seed-cohort perturbation, ``cache`` reuses completed cells,
    and ``budget`` switches the cells to adaptive CI-targeted trial
    allocation.
    """
    dataset = load_dataset("ipums", num_users)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(FIG10_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in FIG10_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = _cell_protocol(protocol_name, DEFAULT_EPSILON, dataset.domain_size)
            attackers = [
                AdaptiveAttack(domain_size=dataset.domain_size, rng=child)
                for child in spawn(gen, FIG10_NUM_ATTACKERS)
            ]
            attack = MultiAttacker(attackers)
            evaluation = evaluate_recovery(
                dataset,
                protocol,
                attack,
                beta=beta,
                eta=DEFAULT_ETA,
                trials=trials,
                mode="fast",
                with_star=False,
                rng=gen,
                workers=workers,
                chunk_users=chunk_users,
                olh_cohort=_cohort_for(protocol, olh_cohort),
                cache=cache,
                budget=budget,
            )
            rows.append(
                {
                    "cell": f"mul-aa-{protocol_name}",
                    "beta": beta,
                    **_metric_columns(
                        evaluation,
                        {
                            "mse_before": "mse_before",
                            "mse_ldprecover": "mse_recover",
                        },
                    ),
                }
            )
    return rows


@dataclass(frozen=True)
class _Table1Task:
    """Picklable per-trial unit of Table I (one unpoisoned recovery round)."""

    dataset: Dataset
    protocol: FrequencyOracle
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _table1_trial(task: _Table1Task) -> dict[str, float]:
    """One Table I trial: MSE before and after recovery, beta=0."""
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, None, beta=0.0, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    truth = trial.true_frequencies
    before = mse(truth, trial.poisoned_frequencies)
    recovery = recover_frequencies(trial.poisoned_frequencies, task.protocol, eta=DEFAULT_ETA)
    return {
        "mse_before_recovery": before,
        "mse_after_recovery": mse(truth, recovery.frequencies),
    }


def table1_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 1,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Table I: LDPRecover executed on *unpoisoned* frequencies (beta=0).

    ``num_users`` rescales both workloads, ``trials`` rounds are averaged
    per (dataset, protocol) cell, ``rng`` seeds the cells, ``workers``
    fans trials out, ``chunk_users`` selects the chunked exact simulation,
    ``olh_cohort`` switches the OLH cells to seed-cohort perturbation,
    ``cache`` reuses completed cells, and ``budget`` switches the cells
    to adaptive CI-targeted trial allocation.
    """
    rows = []
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    columns = ("mse_before_recovery", "mse_after_recovery")
    datasets = [load_dataset("ipums", num_users), load_dataset("fire", num_users)]
    rngs = spawn(rng, len(datasets) * len(PROTOCOL_NAMES))
    idx = 0
    for dataset in datasets:
        for protocol_name in PROTOCOL_NAMES:
            gen = as_generator(rngs[idx])
            idx += 1
            # Cohort mode only exists at the report level (see figure8_rows).
            protocol = _cell_protocol(
                protocol_name,
                DEFAULT_EPSILON,
                dataset.domain_size,
                olh_cohort if mode == "chunked" else None,
            )
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                params = _row_cell_params(
                    protocol, mode, chunk_users, beta=0.0, eta=DEFAULT_ETA, mode=mode
                )
                spec = row_cell_spec("table1", dataset, protocol, (), params, seeds)
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> _Table1Task:
                return _Table1Task(dataset, protocol, mode, chunk_users, seed)

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                stats, cell_meta[0] = _cell_trial_stats(
                    _table1_trial, task_for, seeds, workers, budget, cache, spec
                )
                return {
                    "dataset": dataset.name,
                    "protocol": protocol_name,
                    **_stat_columns(stats, columns),
                }

            rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows
