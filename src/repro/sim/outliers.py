"""Target-item inference for the partial-knowledge scenario (LDPRecover*).

Section V-D motivates partial knowledge with outlier detection over
historical frequency data: targeted attacks inflate target items enough to
make them statistical anomalies.  Section VI-A4 uses two concrete rules:

* MGA — the target items are "explicitly identified" (the server's
  detector found them); we expose the detector itself so examples can show
  the full loop.
* AA — "the items that exhibit the top-r/2 frequency increase following
  the attack".

This module provides both: a z-score detector over historical epochs and
the top-k-increase rule.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError


def top_increase_items(
    reference_freq: np.ndarray, current_freq: np.ndarray, k: int
) -> np.ndarray:
    """The ``k`` items with the largest frequency increase (the AA rule).

    ``reference_freq`` is the server's historical (pre-attack) estimate,
    ``current_freq`` the freshly aggregated (possibly poisoned) vector.
    """
    ref = np.asarray(reference_freq, dtype=np.float64)
    cur = np.asarray(current_freq, dtype=np.float64)
    if ref.shape != cur.shape or ref.ndim != 1:
        raise InvalidParameterError(
            f"frequency vectors must be equal-shape 1-D, got {ref.shape} and {cur.shape}"
        )
    if not 0 < k <= ref.size:
        raise InvalidParameterError(f"k must be in [1, {ref.size}], got {k}")
    increase = cur - ref
    return np.sort(np.argsort(increase)[::-1][:k].astype(np.int64))


class ZScoreOutlierDetector:
    """Flag items whose current frequency deviates from their history.

    The stand-in for the paper's time-series outlier detectors [11-13]:
    fit per-item mean/std over historical epochs of frequency estimates,
    predict the current frequency as the historical mean, and flag items
    whose positive deviation exceeds ``threshold`` standard deviations.
    """

    def __init__(self, threshold: float = 3.0, min_std: float = 1e-6) -> None:
        if threshold <= 0:
            raise InvalidParameterError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self.min_std = float(min_std)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, history: np.ndarray) -> "ZScoreOutlierDetector":
        """Fit on a (num_epochs, d) matrix of historical frequency vectors."""
        hist = np.asarray(history, dtype=np.float64)
        if hist.ndim != 2 or hist.shape[0] < 2:
            raise InvalidParameterError(
                f"history must be a (>=2 epochs, d) matrix, got shape {hist.shape}"
            )
        self._mean = hist.mean(axis=0)
        self._std = np.maximum(hist.std(axis=0, ddof=1), self.min_std)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._mean is not None

    def scores(self, current_freq: np.ndarray) -> np.ndarray:
        """Per-item positive z-scores of the current vector vs. history."""
        if self._mean is None or self._std is None:
            raise InvalidParameterError("detector must be fitted before scoring")
        cur = np.asarray(current_freq, dtype=np.float64)
        if cur.shape != self._mean.shape:
            raise InvalidParameterError(
                f"current vector shape {cur.shape} != history shape {self._mean.shape}"
            )
        return (cur - self._mean) / self._std

    def detect(self, current_freq: np.ndarray) -> np.ndarray:
        """Items whose z-score exceeds the threshold (sorted)."""
        return np.sort(np.flatnonzero(self.scores(current_freq) > self.threshold).astype(np.int64))
