"""Historical-epoch simulation for the partial-knowledge pipeline.

The paper's outlier-detection route to LDPRecover* (Section V-D) assumes
the server holds frequency estimates from past collection epochs.  This
module simulates that history — repeated unpoisoned aggregations of the
same (optionally drifting) population — so examples and tests can run the
full history -> detector -> LDPRecover* loop reproducibly.

It also carries the epoch *attack schedules* of the ``epochs`` scenario
exhibit (:mod:`repro.sim.scenarios`): a :class:`AttackSchedule` maps each
collection epoch to a malicious fraction, modeling attacks that run
constantly, burst on at a chosen epoch, or ramp their adversary fraction
up mid-stream.  Schedules are plain frozen dataclasses of scalars so they
fingerprint into cell cache specs
(:func:`repro.sim.cache.fingerprint_attack_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._rng import RngLike, as_generator, spawn
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.pipeline import run_trial

#: The schedule shapes :class:`AttackSchedule` supports.
SCHEDULE_KINDS = ("constant", "burst", "ramp")


@dataclass(frozen=True)
class AttackSchedule:
    """A per-epoch malicious-fraction schedule for evolving-population runs.

    Three shapes (:data:`SCHEDULE_KINDS`), all built through the factory
    classmethods rather than the raw constructor:

    * ``constant`` — the attack runs at fraction ``beta`` in every epoch;
    * ``burst`` — epochs before ``start_epoch`` are clean, then the attack
      switches on at fraction ``beta`` (the mid-stream burst the
      cross-epoch detector is supposed to catch);
    * ``ramp`` — the adversary fraction drifts linearly from ``beta`` at
      epoch 0 to ``end_beta`` at the final epoch.

    Instances are frozen scalar-only dataclasses: picklable for the trial
    engine and fingerprintable for the cell cache.
    """

    kind: str
    beta: float
    start_epoch: int = 0
    end_beta: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULE_KINDS:
            raise InvalidParameterError(
                f"schedule kind must be one of {SCHEDULE_KINDS}, got {self.kind!r}"
            )
        for name, value in (("beta", self.beta), ("end_beta", self.end_beta)):
            if value is not None and not 0.0 <= float(value) < 1.0:
                raise InvalidParameterError(f"{name} must be in [0, 1), got {value}")
        if self.start_epoch < 0:
            raise InvalidParameterError(
                f"start_epoch must be >= 0, got {self.start_epoch}"
            )
        if self.kind == "ramp" and self.end_beta is None:
            raise InvalidParameterError("ramp schedules need an end_beta")

    @classmethod
    def constant(cls, beta: float) -> "AttackSchedule":
        """The attack runs at fraction ``beta`` in every epoch."""
        return cls(kind="constant", beta=float(beta))

    @classmethod
    def burst(cls, beta: float, at: int) -> "AttackSchedule":
        """Clean until epoch ``at``, then the attack bursts on at ``beta``."""
        return cls(kind="burst", beta=float(beta), start_epoch=int(at))

    @classmethod
    def ramp(cls, beta: float, end_beta: float) -> "AttackSchedule":
        """Adversary fraction drifts linearly from ``beta`` to ``end_beta``."""
        return cls(kind="ramp", beta=float(beta), end_beta=float(end_beta))

    def beta_at(self, epoch: int, num_epochs: int) -> float:
        """The malicious fraction scheduled for ``epoch`` of ``num_epochs``."""
        if num_epochs < 1:
            raise InvalidParameterError(f"num_epochs must be >= 1, got {num_epochs}")
        if not 0 <= epoch < num_epochs:
            raise InvalidParameterError(
                f"epoch must be in [0, {num_epochs}), got {epoch}"
            )
        if self.kind == "constant":
            return self.beta
        if self.kind == "burst":
            return self.beta if epoch >= self.start_epoch else 0.0
        # ramp: linear interpolation from beta (epoch 0) to end_beta (last).
        assert self.end_beta is not None
        if num_epochs == 1:
            return self.beta
        step = (self.end_beta - self.beta) / (num_epochs - 1)
        return self.beta + step * epoch

    def betas(self, num_epochs: int) -> tuple[float, ...]:
        """The full per-epoch fraction vector of a ``num_epochs`` run."""
        return tuple(self.beta_at(epoch, num_epochs) for epoch in range(num_epochs))

    def describe(self) -> str:
        """One-line human description for exhibit rows and logs."""
        if self.kind == "constant":
            return f"constant(beta={self.beta})"
        if self.kind == "burst":
            return f"burst(beta={self.beta}, at={self.start_epoch})"
        return f"ramp({self.beta}->{self.end_beta})"


@dataclass(frozen=True)
class History:
    """A matrix of per-epoch frequency estimates plus provenance."""

    #: (epochs, d) matrix of unpoisoned frequency estimates.
    estimates: np.ndarray
    #: The dataset used for the final (current) epoch.
    final_dataset: Dataset

    @property
    def num_epochs(self) -> int:
        return int(self.estimates.shape[0])

    def mean(self) -> np.ndarray:
        """The server's baseline prediction for the next epoch."""
        return self.estimates.mean(axis=0)


def simulate_history(
    dataset: Dataset,
    protocol: FrequencyOracle,
    epochs: int = 10,
    drift: float = 0.0,
    rng: RngLike = None,
) -> History:
    """Aggregate ``epochs`` unpoisoned rounds of the population.

    Parameters
    ----------
    dataset:
        The genuine population of the first epoch.
    protocol:
        The collection protocol (fresh randomness per epoch).
    epochs:
        Number of past epochs to simulate (>= 2 so a detector can fit).
    drift:
        Per-epoch relative drift of the underlying counts: each epoch the
        true counts are multiplied by ``1 + Uniform(-drift, drift)`` per
        item and re-normalized, modeling organic popularity change.
        ``0.0`` keeps the population fixed.
    rng:
        Seed or generator.

    The drift draws come from a dedicated spawned child stream (spawn key
    0), with one further child per epoch for the collection randomness —
    so changing ``epochs`` never perturbs the shared epoch prefix or any
    unrelated draws off the parent ``rng``, and the epoch-``e`` estimate
    of a 5-epoch run is byte-equal to the epoch-``e`` estimate of an
    8-epoch run under the same seed.
    """
    if epochs < 2:
        raise InvalidParameterError(f"epochs must be >= 2, got {epochs}")
    if not 0.0 <= drift < 1.0:
        raise InvalidParameterError(f"drift must be in [0, 1), got {drift}")
    gen = as_generator(rng)
    # Child 0 is the dedicated drift stream; children 1..epochs drive the
    # per-epoch collection.  Spawn keys are position-stable, so a longer
    # run extends — never reshuffles — a shorter run's streams.
    streams = spawn(gen, epochs + 1)
    drift_gen, epoch_gens = streams[0], streams[1:]
    estimates = np.empty((epochs, dataset.domain_size), dtype=np.float64)
    current = dataset
    for epoch, child in enumerate(epoch_gens):
        trial = run_trial(current, protocol, None, beta=0.0, rng=child)
        estimates[epoch] = trial.genuine_frequencies
        if drift > 0.0:
            current = drift_dataset(current, drift, drift_gen)
    return History(estimates=estimates, final_dataset=current)


def drift_dataset(dataset: Dataset, drift: float, rng: RngLike = None) -> Dataset:
    """Apply one epoch of multiplicative popularity drift to ``dataset``.

    Each item's count is scaled by an independent ``1 + Uniform(-drift,
    drift)`` factor drawn off ``rng`` and the histogram re-normalized
    back to the original ``num_users`` with largest-remainder rounding,
    so the population size is invariant while relative popularity
    wanders.
    """
    if not 0.0 <= drift < 1.0:
        raise InvalidParameterError(f"drift must be in [0, 1), got {drift}")
    gen = as_generator(rng)
    factors = 1.0 + gen.uniform(-drift, drift, size=dataset.domain_size)
    scaled = np.maximum(dataset.counts * factors, 0.0)
    total = scaled.sum()
    if total <= 0:
        return dataset
    ideal = scaled / total * dataset.num_users
    floor = np.floor(ideal).astype(np.int64)
    shortfall = dataset.num_users - int(floor.sum())
    if shortfall > 0:
        top = np.argsort(ideal - floor)[::-1][:shortfall]
        floor[top] += 1
    return Dataset(name=dataset.name, counts=floor)


def epoch_populations(
    dataset: Dataset, epochs: int, drift: float, rng: RngLike = None
) -> list[Dataset]:
    """The evolving per-epoch populations of a ``drift``-ing run.

    Epoch 0 is ``dataset`` itself; each later epoch applies one
    :func:`drift_dataset` step off a single sequential stream (``rng``),
    exactly the population model of :func:`simulate_history` — shared so
    the ``epochs`` scenario exhibit and the history simulator agree on
    what "the same drifting population" means.
    """
    if epochs < 1:
        raise InvalidParameterError(f"epochs must be >= 1, got {epochs}")
    gen = as_generator(rng)
    populations = [dataset]
    for _ in range(1, epochs):
        current = populations[-1]
        populations.append(
            drift_dataset(current, drift, gen) if drift > 0.0 else current
        )
    return populations


# Backwards-compatible private alias (pre-ISSUE-10 name).
_drift_dataset = drift_dataset

__all__ = [
    "SCHEDULE_KINDS",
    "AttackSchedule",
    "History",
    "drift_dataset",
    "epoch_populations",
    "simulate_history",
]
