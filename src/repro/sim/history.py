"""Historical-epoch simulation for the partial-knowledge pipeline.

The paper's outlier-detection route to LDPRecover* (Section V-D) assumes
the server holds frequency estimates from past collection epochs.  This
module simulates that history — repeated unpoisoned aggregations of the
same (optionally drifting) population — so examples and tests can run the
full history -> detector -> LDPRecover* loop reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import RngLike, as_generator, spawn
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import FrequencyOracle
from repro.sim.pipeline import run_trial


@dataclass(frozen=True)
class History:
    """A matrix of per-epoch frequency estimates plus provenance."""

    #: (epochs, d) matrix of unpoisoned frequency estimates.
    estimates: np.ndarray
    #: The dataset used for the final (current) epoch.
    final_dataset: Dataset

    @property
    def num_epochs(self) -> int:
        return int(self.estimates.shape[0])

    def mean(self) -> np.ndarray:
        """The server's baseline prediction for the next epoch."""
        return self.estimates.mean(axis=0)


def simulate_history(
    dataset: Dataset,
    protocol: FrequencyOracle,
    epochs: int = 10,
    drift: float = 0.0,
    rng: RngLike = None,
) -> History:
    """Aggregate ``epochs`` unpoisoned rounds of the population.

    Parameters
    ----------
    dataset:
        The genuine population of the first epoch.
    protocol:
        The collection protocol (fresh randomness per epoch).
    epochs:
        Number of past epochs to simulate (>= 2 so a detector can fit).
    drift:
        Per-epoch relative drift of the underlying counts: each epoch the
        true counts are multiplied by ``1 + Uniform(-drift, drift)`` per
        item and re-normalized, modeling organic popularity change.
        ``0.0`` keeps the population fixed.
    rng:
        Seed or generator.
    """
    if epochs < 2:
        raise InvalidParameterError(f"epochs must be >= 2, got {epochs}")
    if not 0.0 <= drift < 1.0:
        raise InvalidParameterError(f"drift must be in [0, 1), got {drift}")
    gen = as_generator(rng)
    estimates = np.empty((epochs, dataset.domain_size), dtype=np.float64)
    current = dataset
    for epoch, child in enumerate(spawn(gen, epochs)):
        trial = run_trial(current, protocol, None, beta=0.0, rng=child)
        estimates[epoch] = trial.genuine_frequencies
        if drift > 0.0:
            current = _drift_dataset(current, drift, gen)
    return History(estimates=estimates, final_dataset=current)


def _drift_dataset(dataset: Dataset, drift: float, gen: np.random.Generator) -> Dataset:
    """Apply one epoch of multiplicative popularity drift."""
    factors = 1.0 + gen.uniform(-drift, drift, size=dataset.domain_size)
    scaled = np.maximum(dataset.counts * factors, 0.0)
    total = scaled.sum()
    if total <= 0:
        return dataset
    ideal = scaled / total * dataset.num_users
    floor = np.floor(ideal).astype(np.int64)
    shortfall = dataset.num_users - int(floor.sum())
    if shortfall > 0:
        top = np.argsort(ideal - floor)[::-1][:shortfall]
        floor[top] += 1
    return Dataset(name=dataset.name, counts=floor)
