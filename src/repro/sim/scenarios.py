"""Scenario exhibits: first-class sweeps beyond the paper's figures.

The paper's conclusion names poisoning of "more complex tasks, such as
key-value pairs collection" as future work, and heavy hitters are what
targeted promotion actually attacks (MGA's stated goal is promoting its
targets into the popular list).  This module promotes both workloads
from library sketches to first-class *scenario exhibits* that ride the
full experiment stack:

* **Engine** — every cell fans its trials out as picklable tasks through
  :func:`repro.sim.engine.parallel_map` with per-trial
  :class:`~numpy.random.SeedSequence` streams (``workers=N`` is
  bit-identical to ``workers=1``), and metrics accumulate through
  streaming Welford statistics into
  :class:`~repro.sim.engine.MetricStats`, so every column carries a
  ``±`` 95%-CI companion.
* **Cache** — each cell emits one cacheable row payload keyed by a
  canonical :func:`repro.sim.cache.scenario_cell_spec`, so interrupted
  sweeps resume and warm reruns execute zero simulation tasks.
* **Sharding** — scenarios register in the :data:`SCENARIOS` registry
  consumed by :class:`repro.sim.shard.SweepConfig`, so ``ldprecover run
  --exhibit kv|heavyhitter`` and ``shard run|status|merge`` dispatch
  them exactly like any paper figure, and a sharded scenario sweep
  merges bit-identical to the unsharded run.

Adding a new workload is one :class:`ScenarioExhibit` registration
(:func:`register_scenario`), not a fork of :mod:`repro.sim.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, cast

import numpy as np

from repro._rng import RngLike, as_generator, spawn, spawn_sequences
from repro.attacks import MGAAttack
from repro.core.heavyhitters import promoted_items, tail_items, top_k_precision
from repro.core.recover import DEFAULT_ETA, recover_frequencies
from repro.datasets.base import Dataset
from repro.datasets.synthetic import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.kv import KeyValueProtocol, KVPoisoningAttack, recover_key_value
from repro.sim.cache import SHARD_PLACEHOLDER_KEY, CellCache, scenario_cell_spec
from repro.sim.engine import (
    MetricStats,
    TrialBlockStore,
    TrialBudget,
    aggregate_metrics,
    parallel_map,
    run_adaptive_trials,
)
from repro.sim.figures import (
    DEFAULT_EPSILON,
    _cached_cell_row,
    _cell_protocol,
    _cell_trial_stats,
    _row_cell_params,
    _stat_columns,
    load_dataset,
)
from repro.sim.metrics import frequency_gain, mse
from repro.sim.pipeline import SimulationMode, malicious_count, run_trial
from repro.protocols import PROTOCOL_NAMES, FrequencyOracle

__all__ = [
    "HH_BETAS",
    "HH_KS",
    "HH_TARGET_COUNT",
    "KV_BETAS",
    "KV_EPSILONS",
    "KV_NUM_KEYS",
    "KV_TARGET_COUNT",
    "KVPopulation",
    "KVTrialTask",
    "SCENARIOS",
    "ScenarioExhibit",
    "evaluate_kv_recovery",
    "heavyhitter_rows",
    "kv_population",
    "kv_rows",
    "kv_trial_metrics",
    "register_scenario",
    "scenario_names",
]


# ----------------------------------------------------------------------
# Key-value population model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVPopulation:
    """A key-value population: key frequencies plus per-key value means.

    Each user holds one ``(key, value)`` pair.  Keys follow
    ``frequencies``; the value of a key-``k`` user is a two-point draw
    ``+1`` with probability ``(1 + means[k]) / 2`` else ``-1``, so the
    per-key expected value equals ``means[k]`` *exactly* (the extreme
    -point decomposition every ``[-1, 1]``-valued distribution reduces
    to under stochastic rounding).  That keeps the population's ``means``
    an analytic ground truth for unbiasedness tests and recovery error
    metrics — no clipping bias, no empirical re-estimation per trial.
    """

    #: Population name (enters the cache fingerprint).
    name: str
    #: Key-frequency vector (sums to one).
    frequencies: np.ndarray
    #: Per-key expected values in ``[-1, 1]``.
    means: np.ndarray
    #: Number of genuine users.
    num_users: int

    def __post_init__(self) -> None:
        freq = np.asarray(self.frequencies, dtype=np.float64)
        means = np.asarray(self.means, dtype=np.float64)
        if freq.ndim != 1 or freq.size < 2 or freq.shape != means.shape:
            raise InvalidParameterError(
                f"frequencies/means must be equal-length 1-D vectors with >= 2 "
                f"keys, got shapes {freq.shape} and {means.shape}"
            )
        if freq.min() < 0 or not np.isclose(freq.sum(), 1.0):
            raise InvalidParameterError("frequencies must be non-negative and sum to 1")
        if means.min() < -1.0 or means.max() > 1.0:
            raise InvalidParameterError("means must lie in [-1, 1]")
        if self.num_users < 1:
            raise InvalidParameterError(f"num_users must be >= 1, got {self.num_users}")
        object.__setattr__(self, "frequencies", freq)
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "num_users", int(self.num_users))

    @property
    def num_keys(self) -> int:
        """Size of the key domain."""
        return int(self.frequencies.size)

    def sample(self, rng: RngLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Draw one population of ``(keys, values)`` user pairs off ``rng``."""
        gen = as_generator(rng)
        keys = gen.choice(self.num_keys, size=self.num_users, p=self.frequencies)
        up = gen.random(self.num_users) < (1.0 + self.means[keys]) / 2.0
        return keys.astype(np.int64), np.where(up, 1.0, -1.0)


def kv_population(
    num_keys: int = 32,
    num_users: int = 100_000,
    exponent: float = 1.0,
    name: str = "kv-zipf",
) -> KVPopulation:
    """The deterministic synthetic key-value workload of the ``kv`` exhibit.

    Key frequencies follow a Zipf profile over ``num_keys`` keys with the
    given ``exponent`` (rank equals key id — no shuffle, so the same
    arguments always produce the same population and hence the same cache
    fingerprints); per-key means fall linearly from ``+0.9`` (the hottest
    key) to ``-0.9`` (the coldest), so the tail keys the canonical attack
    targets have strongly negative means for ``target_bit=1`` to drag
    upward.  ``num_users`` sizes the genuine population and ``name``
    labels it in rows and cache fingerprints.
    """
    profile = zipf_dataset(
        domain_size=num_keys, num_users=max(num_keys, 10_000),
        exponent=exponent, shuffle=False,
    )
    return KVPopulation(
        name=name,
        frequencies=profile.frequencies,
        means=np.linspace(0.9, -0.9, num_keys),
        num_users=num_users,
    )


# ----------------------------------------------------------------------
# Key-value recovery: the engine path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVTrialTask:
    """One picklable trial of a key-value poisoning + recovery cell.

    Carries the population, protocol, attack, the cell parameters and the
    trial's own :class:`~numpy.random.SeedSequence` child, so pool workers
    share no state and placement cannot change results.
    """

    population: KVPopulation
    protocol: KeyValueProtocol
    attack: KVPoisoningAttack
    seed: np.random.SeedSequence
    beta: float = 0.05
    eta: float = DEFAULT_ETA


def kv_trial_metrics(task: KVTrialTask) -> dict[str, float]:
    """Run one key-value trial ``task`` and compute every cell metric.

    One round: sample the genuine population, perturb it through the
    protocol, craft the ``beta``-fraction of malicious reports, aggregate,
    then recover both without attack knowledge and with the attacker's
    target keys (the LDPRecover* analogue).  Returns a flat
    ``{metric: value}`` dict — key-frequency MSE and per-key mean error
    (mean absolute error against the population's analytic means, over
    all keys and over the attacked keys alone) for the poisoned /
    recovered / target-aware estimates, plus the target-key frequency
    gain relative to the clean aggregate before and after recovery.
    """
    gen = np.random.default_rng(task.seed)
    population, protocol, attack = task.population, task.protocol, task.attack
    n = population.num_users
    m = malicious_count(n, task.beta)
    keys, values = population.sample(gen)
    genuine = protocol.perturb(keys, values, gen)
    clean = protocol.aggregate(genuine)
    if m > 0:
        malicious = attack.craft(protocol, m, gen)
        poisoned = protocol.aggregate(KeyValueProtocol.concat(genuine, malicious))
    else:
        poisoned = clean
    total = n + m

    recovered = recover_key_value(protocol, poisoned, total, eta=task.eta)
    star = recover_key_value(
        protocol,
        poisoned,
        total,
        eta=task.eta,
        target_keys=attack.target_keys,
        malicious_bit=attack.target_bit,
    )

    truth_freq, truth_means = population.frequencies, population.means
    targets = attack.target_keys

    def target_mae(estimate: np.ndarray) -> float:
        return float(np.abs(estimate[targets] - truth_means[targets]).mean())

    return {
        "freq_mse_before": mse(truth_freq, poisoned.frequencies),
        "freq_mse_recover": mse(truth_freq, recovered.frequencies),
        "freq_mse_recover_star": mse(truth_freq, star.frequencies),
        "mean_mae_before": float(np.abs(poisoned.means - truth_means).mean()),
        "mean_mae_recover": float(np.abs(recovered.means - truth_means).mean()),
        "mean_mae_recover_star": float(np.abs(star.means - truth_means).mean()),
        "target_mean_mae_before": target_mae(poisoned.means),
        "target_mean_mae_recover": target_mae(recovered.means),
        "target_mean_mae_recover_star": target_mae(star.means),
        "fg_before": frequency_gain(clean.frequencies, poisoned.frequencies, targets),
        "fg_recover": frequency_gain(clean.frequencies, recovered.frequencies, targets),
        "fg_recover_star": frequency_gain(clean.frequencies, star.frequencies, targets),
    }


def evaluate_kv_recovery(
    population: KVPopulation,
    protocol: KeyValueProtocol,
    attack: KVPoisoningAttack,
    beta: float = 0.05,
    eta: float = DEFAULT_ETA,
    trials: int = 10,
    rng: RngLike = None,
    workers: Optional[int] = 1,
    seeds: Optional[Sequence[np.random.SeedSequence]] = None,
    budget: Optional[TrialBudget] = None,
    store: Optional[TrialBlockStore] = None,
) -> dict[str, MetricStats]:
    """Run one key-value recovery cell and average over ``trials``.

    The key-value analogue of
    :func:`repro.sim.experiment.evaluate_recovery`: ``trials``
    independent poisoning rounds of ``attack`` against ``protocol`` over
    ``population`` at malicious fraction ``beta`` become picklable
    :class:`KVTrialTask` units — each owning a
    :class:`~numpy.random.SeedSequence` child spawned from ``rng`` (or
    taken from ``seeds``, which overrides ``rng``/``trials`` when the
    caller pre-spawned them for a cache spec) — fanned out through
    :func:`repro.sim.engine.parallel_map` over ``workers`` processes and
    folded into streaming per-metric statistics.  ``eta`` is the
    server-side ratio knob of both recovery variants.  With a
    :class:`~repro.sim.engine.TrialBudget` in ``budget`` the cell instead
    runs adaptively over the first ``budget.max_trials`` seeds of the
    same canonical stream (``trials`` is superseded), stopping at the
    first checkpoint whose 95% CI half-widths meet the target and
    resuming from ``store`` (a trial-block store) when one is given.
    Returns the ``{metric: MetricStats}`` aggregation of
    :func:`kv_trial_metrics` (mean / variance / stderr / count per
    metric); results are bit-identical for any ``workers``.
    """
    if seeds is None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        seeds = spawn_sequences(rng, trials if budget is None else budget.max_trials)
    elif not len(seeds):
        raise InvalidParameterError("seeds must be non-empty when provided")
    malicious_count(population.num_users, beta)  # surface m == 0 rounding early

    def task_for(seed: np.random.SeedSequence) -> KVTrialTask:
        return KVTrialTask(
            population=population,
            protocol=protocol,
            attack=attack,
            seed=seed,
            beta=beta,
            eta=eta,
        )

    if budget is not None:
        outcome = run_adaptive_trials(
            budget, kv_trial_metrics, task_for, list(seeds), workers=workers, store=store
        )
        return outcome.stats
    tasks = [task_for(seed) for seed in seeds]
    return aggregate_metrics(parallel_map(kv_trial_metrics, tasks, workers=workers))


#: Total privacy budgets of the ``kv`` sweep (split evenly key/value).
KV_EPSILONS = (2.0, 4.0)
#: Malicious fractions of the ``kv`` sweep.
KV_BETAS = (0.01, 0.05, 0.1, 0.15, 0.2)
#: Key-domain size of the ``kv`` sweep's population.
KV_NUM_KEYS = 32
#: Number of (least frequent) target keys the canonical attack promotes.
KV_TARGET_COUNT = 3

#: Default genuine population of the ``kv`` exhibit (``num_users=None``).
_KV_DEFAULT_USERS = 100_000

_KV_COLUMNS = (
    "freq_mse_before",
    "freq_mse_recover",
    "freq_mse_recover_star",
    "mean_mae_before",
    "mean_mae_recover",
    "mean_mae_recover_star",
    "target_mean_mae_before",
    "target_mean_mae_recover",
    "target_mean_mae_recover_star",
    "fg_before",
    "fg_recover",
    "fg_recover_star",
)


def kv_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 11,
    workers: Optional[int] = 1,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``kv``: key-value recovery across privacy budget and beta.

    One cell per (epsilon, beta) on the :data:`KV_EPSILONS` ×
    :data:`KV_BETAS` grid: the canonical targeted key-value attack (fake
    users report a tail key with the maximal value bit) poisons a
    PrivKV-style protocol over the deterministic :func:`kv_population`
    workload, and both recovery variants run —
    :func:`repro.kv.recover_key_value` without attack knowledge and with
    the attacker's target keys.  ``num_users`` sizes the genuine
    population (``None`` = 100k), ``trials`` rounds are averaged per cell
    through :func:`evaluate_kv_recovery`, ``rng`` seeds the cells
    independently, ``workers`` fans trials over the process pool,
    ``cache`` serves completed cells across runs (row payloads keyed by
    :func:`repro.sim.cache.scenario_cell_spec`), and ``budget`` switches
    the cells to adaptive CI-targeted trial allocation over the same
    canonical seed stream (cached trial blocks are resumed and extended
    rather than recomputed).
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    population = kv_population(
        num_keys=KV_NUM_KEYS,
        num_users=_KV_DEFAULT_USERS if num_users is None else int(num_users),
    )
    targets = tail_items(population.frequencies, KV_TARGET_COUNT)
    rows = []
    rngs = spawn(rng, len(KV_EPSILONS) * len(KV_BETAS))
    idx = 0
    for epsilon in KV_EPSILONS:
        for beta in KV_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = KeyValueProtocol(
                eps_key=epsilon / 2.0, eps_value=epsilon / 2.0, num_keys=KV_NUM_KEYS
            )
            attack = KVPoisoningAttack(
                num_keys=KV_NUM_KEYS, targets=targets, target_bit=1
            )
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                spec = scenario_cell_spec(
                    "kv",
                    population,
                    protocol,
                    (attack,),
                    {"beta": beta, "epsilon": epsilon, "eta": DEFAULT_ETA},
                    seeds,
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> KVTrialTask:
                return KVTrialTask(
                    population=population,
                    protocol=protocol,
                    attack=attack,
                    seed=seed,
                    beta=beta,
                    eta=DEFAULT_ETA,
                )

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                stats, cell_meta[0] = _cell_trial_stats(
                    kv_trial_metrics, task_for, seeds, workers, budget, cache, spec
                )
                return {
                    "cell": attack.describe(),
                    "epsilon": epsilon,
                    "beta": beta,
                    **_stat_columns(stats, _KV_COLUMNS),
                }

            rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows


# ----------------------------------------------------------------------
# Heavy-hitter promotion / repair sweep
# ----------------------------------------------------------------------
#: Malicious fractions of the ``heavyhitter`` sweep.
HH_BETAS = (0.05, 0.1, 0.15)
#: Top-k sizes of the ``heavyhitter`` sweep.
HH_KS = (5, 10)
#: Number of (least frequent) items the attack tries to promote.
HH_TARGET_COUNT = 5

_HH_COLUMNS = (
    "precision_poisoned",
    "precision_recovered",
    "precision_recovered_star",
    "promoted_poisoned",
    "promoted_recovered",
    "promoted_recovered_star",
)


@dataclass(frozen=True)
class _HHTask:
    """Picklable per-trial unit of the heavy-hitter scenario.

    One simulated trial serves *every* ``ks`` entry: the poisoning round
    and both recoveries are independent of ``k``, which only selects
    which top-k metrics are read off the recovered vectors.
    """

    dataset: Dataset
    protocol: FrequencyOracle
    attack: MGAAttack
    beta: float
    ks: tuple[int, ...]
    eta: float
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _heavyhitter_trial(task: _HHTask) -> dict[str, float]:
    """One heavy-hitter trial: top-k quality before/after recovery.

    ``precision_*`` is top-k precision against the true heavy hitters
    (equal to recall for equal-size sets — one column reports both);
    ``promoted_*`` counts non-heavy-hitter items occupying the estimated
    top-k (the attacker's planted items when the attack succeeds).  Each
    metric is emitted once per ``k`` in ``task.ks`` under a ``_k<k>``
    suffix — simulation and recovery run once regardless of how many
    ``k`` values the sweep reports.
    """
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, task.attack, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    truth = trial.true_frequencies
    recovery = recover_frequencies(trial.poisoned_frequencies, task.protocol, eta=task.eta)
    star = recover_frequencies(
        trial.poisoned_frequencies, task.protocol, eta=task.eta,
        target_items=task.attack.target_items,
    )
    estimates = {
        "poisoned": trial.poisoned_frequencies,
        "recovered": recovery.frequencies,
        "recovered_star": star.frequencies,
    }
    out: dict[str, float] = {}
    for k in task.ks:
        for label, estimate in estimates.items():
            out[f"precision_{label}_k{k}"] = top_k_precision(truth, estimate, k)
            out[f"promoted_{label}_k{k}"] = float(promoted_items(truth, estimate, k).size)
    return out


def heavyhitter_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 12,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``heavyhitter``: top-k promotion and repair per cell.

    One simulated cell per (protocol, beta) over all three frequency
    oracles and :data:`HH_BETAS` — the trials do not depend on ``k``, so
    every :data:`HH_KS` entry is read off the same recovered vectors and
    the cell expands into one output row per ``k``.  MGA targets the
    :data:`HH_TARGET_COUNT` least frequent IPUMS items (deterministic
    targets, so cells cache stably) and each row reports top-k
    precision (= recall for equal-size sets) and promoted-item counts of
    the poisoned, LDPRecover and LDPRecover* estimates.  ``num_users``
    rescales the population (``None`` = paper scale), ``trials`` rounds
    average per cell, ``rng`` seeds the cells, ``workers`` fans trials
    out, ``chunk_users`` switches to the bounded-memory exact simulation,
    ``olh_cohort`` applies seed-cohort perturbation to the OLH cells in
    chunked mode, ``cache`` serves completed cells across runs, and
    ``budget`` switches the cells to adaptive CI-targeted trial
    allocation.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    dataset = load_dataset("ipums", num_users)
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    targets = tail_items(dataset.frequencies, HH_TARGET_COUNT)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(HH_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in HH_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            # Cohort mode only exists at the report level (see figure8_rows).
            protocol = _cell_protocol(
                protocol_name,
                DEFAULT_EPSILON,
                dataset.domain_size,
                olh_cohort if mode == "chunked" else None,
            )
            attack = MGAAttack(domain_size=dataset.domain_size, targets=targets)
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                params = _row_cell_params(
                    protocol, mode, chunk_users,
                    beta=beta, ks=list(HH_KS), eta=DEFAULT_ETA, mode=mode,
                )
                spec = scenario_cell_spec(
                    "heavyhitter", dataset, protocol, (attack,), params, seeds
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> _HHTask:
                return _HHTask(
                    dataset, protocol, attack, beta, HH_KS, DEFAULT_ETA,
                    mode, chunk_users, seed,
                )

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                # One cell per (protocol, beta): the simulation does not
                # depend on k, so every HH_KS entry is read off the same
                # trials and the cached payload carries all of them.
                stats, cell_meta[0] = _cell_trial_stats(
                    _heavyhitter_trial, task_for, seeds, workers, budget, cache, spec
                )
                per_k = {
                    str(k): _stat_columns(
                        {metric: stats[f"{metric}_k{k}"] for metric in _HH_COLUMNS},
                        _HH_COLUMNS,
                    )
                    for k in HH_KS
                }
                return {"cell": f"mga-{protocol_name}", "beta": beta, "per_k": per_k}

            payload = _cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0])
            if SHARD_PLACEHOLDER_KEY in payload:
                # Placeholder payload from the shard/enumeration cache
                # adapters (the cell belongs to another shard, or only its
                # spec is being recorded): those callers discard the rows,
                # so pass it through instead of expanding.  Any other
                # payload must carry the per-k schema — fail loudly if not.
                rows.append(payload)
                continue
            per_k = cast("dict[str, dict[str, object]]", payload["per_k"])
            for k in HH_KS:
                rows.append(
                    {"cell": payload["cell"], "beta": beta, "k": k, **per_k[str(k)]}
                )
    return rows


# ----------------------------------------------------------------------
# The scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioExhibit:
    """One registered scenario sweep: a generator plus its engine knobs.

    ``name`` is the registry key (the CLI's ``--exhibit`` value),
    ``description`` the one-liner shown by ``ldprecover list``, and
    ``rows`` the generator callable (``kv_rows``-shaped: it must accept
    ``num_users``, ``trials``, ``rng``, ``workers`` and ``cache``
    keywords, plus ``budget`` to support adaptive CI-targeted sweeps).
    ``uses_chunk_users`` / ``uses_olh_cohort`` declare which
    optional engine knobs the generator additionally accepts — the sweep
    dispatch (:meth:`run`) forwards only declared knobs, and
    :meth:`repro.sim.shard.SweepConfig.digest` drops undeclared ones so
    workers passing an inapplicable flag still report under the same
    sweep digest.
    """

    name: str
    description: str
    rows: Callable[..., list[dict[str, object]]]
    uses_chunk_users: bool = False
    uses_olh_cohort: bool = False

    def run(
        self,
        *,
        num_users: Optional[int] = None,
        trials: int = 5,
        rng: RngLike = None,
        workers: Optional[int] = 1,
        chunk_users: Optional[int] = None,
        olh_cohort: Optional[int] = None,
        cache: Optional[CellCache] = None,
        budget: Optional[TrialBudget] = None,
    ) -> list[dict[str, object]]:
        """Execute the scenario sweep and return its exhibit rows.

        ``num_users`` / ``trials`` / ``rng`` / ``workers`` / ``cache``
        forward to the generator unconditionally; ``chunk_users`` and
        ``olh_cohort`` forward only when the exhibit declares support for
        them (undeclared knobs are dropped — they cannot shape the
        cells, exactly like the figure generators that ignore them), and
        ``budget`` forwards only when one is actually set, so generators
        that predate adaptive budgets keep working for fixed-budget
        sweeps (requesting ``--target-ci`` against one fails loudly).
        """
        kwargs: dict[str, object] = {
            "num_users": num_users,
            "trials": trials,
            "rng": rng,
            "workers": workers,
            "cache": cache,
        }
        if budget is not None:
            kwargs["budget"] = budget
        if self.uses_chunk_users:
            kwargs["chunk_users"] = chunk_users
        if self.uses_olh_cohort:
            kwargs["olh_cohort"] = olh_cohort
        return self.rows(**kwargs)


#: Registered scenario exhibits by name; :class:`repro.sim.shard.SweepConfig`
#: and the CLI dispatch any name in here exactly like a paper figure.
SCENARIOS: dict[str, ScenarioExhibit] = {
    "kv": ScenarioExhibit(
        name="kv",
        description="key-value poisoning recovery across epsilon and beta",
        rows=kv_rows,
    ),
    "heavyhitter": ScenarioExhibit(
        name="heavyhitter",
        description="top-k heavy-hitter promotion and repair across protocols, beta and k",
        rows=heavyhitter_rows,
        uses_chunk_users=True,
        uses_olh_cohort=True,
    ),
}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario exhibit names, in registration order."""
    return tuple(SCENARIOS)


def register_scenario(exhibit: ScenarioExhibit) -> None:
    """Add ``exhibit`` to the :data:`SCENARIOS` registry.

    The name must not collide with an existing scenario or with a paper
    figure (:attr:`repro.sim.shard.SweepConfig.FIGURES`); once
    registered, ``SweepConfig(figure=exhibit.name)`` — and therefore
    ``ldprecover run|shard --exhibit <name>`` — dispatches it like any
    built-in exhibit.
    """
    from repro.sim.shard import SweepConfig  # deferred: shard imports this module

    if exhibit.name in SCENARIOS or exhibit.name in SweepConfig.FIGURES:
        raise InvalidParameterError(
            f"scenario name {exhibit.name!r} is already taken"
        )
    SCENARIOS[exhibit.name] = exhibit
