"""Scenario exhibits: first-class sweeps beyond the paper's figures.

The paper's conclusion names poisoning of "more complex tasks, such as
key-value pairs collection" as future work, and heavy hitters are what
targeted promotion actually attacks (MGA's stated goal is promoting its
targets into the popular list).  This module promotes both workloads
from library sketches to first-class *scenario exhibits* that ride the
full experiment stack:

* **Engine** — every cell fans its trials out as picklable tasks through
  :func:`repro.sim.engine.parallel_map` with per-trial
  :class:`~numpy.random.SeedSequence` streams (``workers=N`` is
  bit-identical to ``workers=1``), and metrics accumulate through
  streaming Welford statistics into
  :class:`~repro.sim.engine.MetricStats`, so every column carries a
  ``±`` 95%-CI companion.
* **Cache** — each cell emits one cacheable row payload keyed by a
  canonical :func:`repro.sim.cache.scenario_cell_spec`, so interrupted
  sweeps resume and warm reruns execute zero simulation tasks.
* **Sharding** — scenarios register in the :data:`SCENARIOS` registry
  consumed by :class:`repro.sim.shard.SweepConfig`, so ``ldprecover run
  --exhibit kv|heavyhitter`` and ``shard run|status|merge`` dispatch
  them exactly like any paper figure, and a sharded scenario sweep
  merges bit-identical to the unsharded run.

Adding a new workload is one :class:`ScenarioExhibit` registration
(:func:`register_scenario`), not a fork of :mod:`repro.sim.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, cast

import numpy as np

from repro._rng import RngLike, as_generator, spawn, spawn_sequences
from repro.attacks import MGAAttack, ScheduledAttack
from repro.core.detection import detect_and_aggregate
from repro.core.heavyhitters import promoted_items, tail_items, top_k_precision
from repro.core.kmeans import recover_with_kmeans
from repro.core.projection import project_onto_simplex_sort
from repro.core.recover import DEFAULT_ETA, recover_frequencies
from repro.datasets.base import Dataset
from repro.datasets.synthetic import zipf_dataset
from repro.exceptions import InvalidParameterError
from repro.kv import KeyValueProtocol, KVPoisoningAttack, recover_key_value
from repro.sim.cache import (
    SHARD_PLACEHOLDER_KEY,
    CellCache,
    fingerprint_attack_schedule,
    scenario_cell_spec,
)
from repro.sim.engine import (
    MetricStats,
    TrialBlockStore,
    TrialBudget,
    aggregate_metrics,
    parallel_map,
    resolve_star_targets,
    run_adaptive_trials,
)
from repro.sim.figures import (
    DEFAULT_EPSILON,
    _cached_cell_row,
    _cell_protocol,
    _cell_trial_stats,
    _make_attack,
    _row_cell_params,
    _stat_columns,
    load_dataset,
)
from repro.sim.history import AttackSchedule, drift_dataset
from repro.sim.metrics import frequency_gain, mse
from repro.sim.outliers import ZScoreOutlierDetector
from repro.sim.pipeline import SimulationMode, malicious_count, run_trial
from repro.sim.streaming import AggregatorState, fan_in
from repro.protocols import PROTOCOL_NAMES, FrequencyOracle
from repro.protocols.base import counts_to_items

__all__ = [
    "DEFENSE_ATTACKS",
    "DEFENSE_BETAS",
    "DEFENSE_EPSILONS",
    "DEFENSE_METHODS",
    "EPOCH_COLLECTORS",
    "EPOCH_COUNT",
    "EPOCH_DRIFT",
    "EPOCH_HISTORY_MIN",
    "EPOCH_SCHEDULES",
    "EPOCH_TARGET_COUNT",
    "HH_BETAS",
    "HH_KS",
    "HH_TARGET_COUNT",
    "KV_BETAS",
    "KV_EPSILONS",
    "KV_NUM_KEYS",
    "KV_TARGET_COUNT",
    "KVPopulation",
    "KVTrialTask",
    "SCENARIOS",
    "ScenarioExhibit",
    "defenses_rows",
    "detection_f1",
    "epochs_rows",
    "evaluate_kv_recovery",
    "heavyhitter_rows",
    "kv_population",
    "kv_rows",
    "kv_trial_metrics",
    "register_scenario",
    "scenario_names",
]


# ----------------------------------------------------------------------
# Key-value population model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVPopulation:
    """A key-value population: key frequencies plus per-key value means.

    Each user holds one ``(key, value)`` pair.  Keys follow
    ``frequencies``; the value of a key-``k`` user is a two-point draw
    ``+1`` with probability ``(1 + means[k]) / 2`` else ``-1``, so the
    per-key expected value equals ``means[k]`` *exactly* (the extreme
    -point decomposition every ``[-1, 1]``-valued distribution reduces
    to under stochastic rounding).  That keeps the population's ``means``
    an analytic ground truth for unbiasedness tests and recovery error
    metrics — no clipping bias, no empirical re-estimation per trial.
    """

    #: Population name (enters the cache fingerprint).
    name: str
    #: Key-frequency vector (sums to one).
    frequencies: np.ndarray
    #: Per-key expected values in ``[-1, 1]``.
    means: np.ndarray
    #: Number of genuine users.
    num_users: int

    def __post_init__(self) -> None:
        freq = np.asarray(self.frequencies, dtype=np.float64)
        means = np.asarray(self.means, dtype=np.float64)
        if freq.ndim != 1 or freq.size < 2 or freq.shape != means.shape:
            raise InvalidParameterError(
                f"frequencies/means must be equal-length 1-D vectors with >= 2 "
                f"keys, got shapes {freq.shape} and {means.shape}"
            )
        if freq.min() < 0 or not np.isclose(freq.sum(), 1.0):
            raise InvalidParameterError("frequencies must be non-negative and sum to 1")
        if means.min() < -1.0 or means.max() > 1.0:
            raise InvalidParameterError("means must lie in [-1, 1]")
        if self.num_users < 1:
            raise InvalidParameterError(f"num_users must be >= 1, got {self.num_users}")
        object.__setattr__(self, "frequencies", freq)
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "num_users", int(self.num_users))

    @property
    def num_keys(self) -> int:
        """Size of the key domain."""
        return int(self.frequencies.size)

    def sample(self, rng: RngLike = None) -> tuple[np.ndarray, np.ndarray]:
        """Draw one population of ``(keys, values)`` user pairs off ``rng``."""
        gen = as_generator(rng)
        keys = gen.choice(self.num_keys, size=self.num_users, p=self.frequencies)
        up = gen.random(self.num_users) < (1.0 + self.means[keys]) / 2.0
        return keys.astype(np.int64), np.where(up, 1.0, -1.0)


def kv_population(
    num_keys: int = 32,
    num_users: int = 100_000,
    exponent: float = 1.0,
    name: str = "kv-zipf",
) -> KVPopulation:
    """The deterministic synthetic key-value workload of the ``kv`` exhibit.

    Key frequencies follow a Zipf profile over ``num_keys`` keys with the
    given ``exponent`` (rank equals key id — no shuffle, so the same
    arguments always produce the same population and hence the same cache
    fingerprints); per-key means fall linearly from ``+0.9`` (the hottest
    key) to ``-0.9`` (the coldest), so the tail keys the canonical attack
    targets have strongly negative means for ``target_bit=1`` to drag
    upward.  ``num_users`` sizes the genuine population and ``name``
    labels it in rows and cache fingerprints.
    """
    profile = zipf_dataset(
        domain_size=num_keys, num_users=max(num_keys, 10_000),
        exponent=exponent, shuffle=False,
    )
    return KVPopulation(
        name=name,
        frequencies=profile.frequencies,
        means=np.linspace(0.9, -0.9, num_keys),
        num_users=num_users,
    )


# ----------------------------------------------------------------------
# Key-value recovery: the engine path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KVTrialTask:
    """One picklable trial of a key-value poisoning + recovery cell.

    Carries the population, protocol, attack, the cell parameters and the
    trial's own :class:`~numpy.random.SeedSequence` child, so pool workers
    share no state and placement cannot change results.
    """

    population: KVPopulation
    protocol: KeyValueProtocol
    attack: KVPoisoningAttack
    seed: np.random.SeedSequence
    beta: float = 0.05
    eta: float = DEFAULT_ETA


def kv_trial_metrics(task: KVTrialTask) -> dict[str, float]:
    """Run one key-value trial ``task`` and compute every cell metric.

    One round: sample the genuine population, perturb it through the
    protocol, craft the ``beta``-fraction of malicious reports, aggregate,
    then recover both without attack knowledge and with the attacker's
    target keys (the LDPRecover* analogue).  Returns a flat
    ``{metric: value}`` dict — key-frequency MSE and per-key mean error
    (mean absolute error against the population's analytic means, over
    all keys and over the attacked keys alone) for the poisoned /
    recovered / target-aware estimates, plus the target-key frequency
    gain relative to the clean aggregate before and after recovery.
    """
    gen = np.random.default_rng(task.seed)
    population, protocol, attack = task.population, task.protocol, task.attack
    n = population.num_users
    m = malicious_count(n, task.beta)
    keys, values = population.sample(gen)
    genuine = protocol.perturb(keys, values, gen)
    clean = protocol.aggregate(genuine)
    if m > 0:
        malicious = attack.craft(protocol, m, gen)
        poisoned = protocol.aggregate(KeyValueProtocol.concat(genuine, malicious))
    else:
        poisoned = clean
    total = n + m

    recovered = recover_key_value(protocol, poisoned, total, eta=task.eta)
    star = recover_key_value(
        protocol,
        poisoned,
        total,
        eta=task.eta,
        target_keys=attack.target_keys,
        malicious_bit=attack.target_bit,
    )

    truth_freq, truth_means = population.frequencies, population.means
    targets = attack.target_keys

    def target_mae(estimate: np.ndarray) -> float:
        return float(np.abs(estimate[targets] - truth_means[targets]).mean())

    return {
        "freq_mse_before": mse(truth_freq, poisoned.frequencies),
        "freq_mse_recover": mse(truth_freq, recovered.frequencies),
        "freq_mse_recover_star": mse(truth_freq, star.frequencies),
        "mean_mae_before": float(np.abs(poisoned.means - truth_means).mean()),
        "mean_mae_recover": float(np.abs(recovered.means - truth_means).mean()),
        "mean_mae_recover_star": float(np.abs(star.means - truth_means).mean()),
        "target_mean_mae_before": target_mae(poisoned.means),
        "target_mean_mae_recover": target_mae(recovered.means),
        "target_mean_mae_recover_star": target_mae(star.means),
        "fg_before": frequency_gain(clean.frequencies, poisoned.frequencies, targets),
        "fg_recover": frequency_gain(clean.frequencies, recovered.frequencies, targets),
        "fg_recover_star": frequency_gain(clean.frequencies, star.frequencies, targets),
    }


def evaluate_kv_recovery(
    population: KVPopulation,
    protocol: KeyValueProtocol,
    attack: KVPoisoningAttack,
    beta: float = 0.05,
    eta: float = DEFAULT_ETA,
    trials: int = 10,
    rng: RngLike = None,
    workers: Optional[int] = 1,
    seeds: Optional[Sequence[np.random.SeedSequence]] = None,
    budget: Optional[TrialBudget] = None,
    store: Optional[TrialBlockStore] = None,
) -> dict[str, MetricStats]:
    """Run one key-value recovery cell and average over ``trials``.

    The key-value analogue of
    :func:`repro.sim.experiment.evaluate_recovery`: ``trials``
    independent poisoning rounds of ``attack`` against ``protocol`` over
    ``population`` at malicious fraction ``beta`` become picklable
    :class:`KVTrialTask` units — each owning a
    :class:`~numpy.random.SeedSequence` child spawned from ``rng`` (or
    taken from ``seeds``, which overrides ``rng``/``trials`` when the
    caller pre-spawned them for a cache spec) — fanned out through
    :func:`repro.sim.engine.parallel_map` over ``workers`` processes and
    folded into streaming per-metric statistics.  ``eta`` is the
    server-side ratio knob of both recovery variants.  With a
    :class:`~repro.sim.engine.TrialBudget` in ``budget`` the cell instead
    runs adaptively over the first ``budget.max_trials`` seeds of the
    same canonical stream (``trials`` is superseded), stopping at the
    first checkpoint whose 95% CI half-widths meet the target and
    resuming from ``store`` (a trial-block store) when one is given.
    Returns the ``{metric: MetricStats}`` aggregation of
    :func:`kv_trial_metrics` (mean / variance / stderr / count per
    metric); results are bit-identical for any ``workers``.
    """
    if seeds is None:
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        seeds = spawn_sequences(rng, trials if budget is None else budget.max_trials)
    elif not len(seeds):
        raise InvalidParameterError("seeds must be non-empty when provided")
    malicious_count(population.num_users, beta)  # surface m == 0 rounding early

    def task_for(seed: np.random.SeedSequence) -> KVTrialTask:
        return KVTrialTask(
            population=population,
            protocol=protocol,
            attack=attack,
            seed=seed,
            beta=beta,
            eta=eta,
        )

    if budget is not None:
        outcome = run_adaptive_trials(
            budget, kv_trial_metrics, task_for, list(seeds), workers=workers, store=store
        )
        return outcome.stats
    tasks = [task_for(seed) for seed in seeds]
    return aggregate_metrics(parallel_map(kv_trial_metrics, tasks, workers=workers))


#: Total privacy budgets of the ``kv`` sweep (split evenly key/value).
KV_EPSILONS = (2.0, 4.0)
#: Malicious fractions of the ``kv`` sweep.
KV_BETAS = (0.01, 0.05, 0.1, 0.15, 0.2)
#: Key-domain size of the ``kv`` sweep's population.
KV_NUM_KEYS = 32
#: Number of (least frequent) target keys the canonical attack promotes.
KV_TARGET_COUNT = 3

#: Default genuine population of the ``kv`` exhibit (``num_users=None``).
_KV_DEFAULT_USERS = 100_000

_KV_COLUMNS = (
    "freq_mse_before",
    "freq_mse_recover",
    "freq_mse_recover_star",
    "mean_mae_before",
    "mean_mae_recover",
    "mean_mae_recover_star",
    "target_mean_mae_before",
    "target_mean_mae_recover",
    "target_mean_mae_recover_star",
    "fg_before",
    "fg_recover",
    "fg_recover_star",
)


def kv_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 11,
    workers: Optional[int] = 1,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``kv``: key-value recovery across privacy budget and beta.

    One cell per (epsilon, beta) on the :data:`KV_EPSILONS` ×
    :data:`KV_BETAS` grid: the canonical targeted key-value attack (fake
    users report a tail key with the maximal value bit) poisons a
    PrivKV-style protocol over the deterministic :func:`kv_population`
    workload, and both recovery variants run —
    :func:`repro.kv.recover_key_value` without attack knowledge and with
    the attacker's target keys.  ``num_users`` sizes the genuine
    population (``None`` = 100k), ``trials`` rounds are averaged per cell
    through :func:`evaluate_kv_recovery`, ``rng`` seeds the cells
    independently, ``workers`` fans trials over the process pool,
    ``cache`` serves completed cells across runs (row payloads keyed by
    :func:`repro.sim.cache.scenario_cell_spec`), and ``budget`` switches
    the cells to adaptive CI-targeted trial allocation over the same
    canonical seed stream (cached trial blocks are resumed and extended
    rather than recomputed).
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    population = kv_population(
        num_keys=KV_NUM_KEYS,
        num_users=_KV_DEFAULT_USERS if num_users is None else int(num_users),
    )
    targets = tail_items(population.frequencies, KV_TARGET_COUNT)
    rows = []
    rngs = spawn(rng, len(KV_EPSILONS) * len(KV_BETAS))
    idx = 0
    for epsilon in KV_EPSILONS:
        for beta in KV_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            protocol = KeyValueProtocol(
                eps_key=epsilon / 2.0, eps_value=epsilon / 2.0, num_keys=KV_NUM_KEYS
            )
            attack = KVPoisoningAttack(
                num_keys=KV_NUM_KEYS, targets=targets, target_bit=1
            )
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                spec = scenario_cell_spec(
                    "kv",
                    population,
                    protocol,
                    (attack,),
                    {"beta": beta, "epsilon": epsilon, "eta": DEFAULT_ETA},
                    seeds,
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> KVTrialTask:
                return KVTrialTask(
                    population=population,
                    protocol=protocol,
                    attack=attack,
                    seed=seed,
                    beta=beta,
                    eta=DEFAULT_ETA,
                )

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                stats, cell_meta[0] = _cell_trial_stats(
                    kv_trial_metrics, task_for, seeds, workers, budget, cache, spec
                )
                return {
                    "cell": attack.describe(),
                    "epsilon": epsilon,
                    "beta": beta,
                    **_stat_columns(stats, _KV_COLUMNS),
                }

            rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows


# ----------------------------------------------------------------------
# Heavy-hitter promotion / repair sweep
# ----------------------------------------------------------------------
#: Malicious fractions of the ``heavyhitter`` sweep.
HH_BETAS = (0.05, 0.1, 0.15)
#: Top-k sizes of the ``heavyhitter`` sweep.
HH_KS = (5, 10)
#: Number of (least frequent) items the attack tries to promote.
HH_TARGET_COUNT = 5

_HH_COLUMNS = (
    "precision_poisoned",
    "precision_recovered",
    "precision_recovered_star",
    "promoted_poisoned",
    "promoted_recovered",
    "promoted_recovered_star",
)


@dataclass(frozen=True)
class _HHTask:
    """Picklable per-trial unit of the heavy-hitter scenario.

    One simulated trial serves *every* ``ks`` entry: the poisoning round
    and both recoveries are independent of ``k``, which only selects
    which top-k metrics are read off the recovered vectors.
    """

    dataset: Dataset
    protocol: FrequencyOracle
    attack: MGAAttack
    beta: float
    ks: tuple[int, ...]
    eta: float
    mode: SimulationMode
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _heavyhitter_trial(task: _HHTask) -> dict[str, float]:
    """One heavy-hitter trial: top-k quality before/after recovery.

    ``precision_*`` is top-k precision against the true heavy hitters
    (equal to recall for equal-size sets — one column reports both);
    ``promoted_*`` counts non-heavy-hitter items occupying the estimated
    top-k (the attacker's planted items when the attack succeeds).  Each
    metric is emitted once per ``k`` in ``task.ks`` under a ``_k<k>``
    suffix — simulation and recovery run once regardless of how many
    ``k`` values the sweep reports.
    """
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, task.attack, beta=task.beta, mode=task.mode,
        rng=gen, chunk_users=task.chunk_users,
    )
    truth = trial.true_frequencies
    recovery = recover_frequencies(trial.poisoned_frequencies, task.protocol, eta=task.eta)
    star = recover_frequencies(
        trial.poisoned_frequencies, task.protocol, eta=task.eta,
        target_items=task.attack.target_items,
    )
    estimates = {
        "poisoned": trial.poisoned_frequencies,
        "recovered": recovery.frequencies,
        "recovered_star": star.frequencies,
    }
    out: dict[str, float] = {}
    for k in task.ks:
        for label, estimate in estimates.items():
            out[f"precision_{label}_k{k}"] = top_k_precision(truth, estimate, k)
            out[f"promoted_{label}_k{k}"] = float(promoted_items(truth, estimate, k).size)
    return out


def heavyhitter_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 12,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    olh_cohort: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``heavyhitter``: top-k promotion and repair per cell.

    One simulated cell per (protocol, beta) over all three frequency
    oracles and :data:`HH_BETAS` — the trials do not depend on ``k``, so
    every :data:`HH_KS` entry is read off the same recovered vectors and
    the cell expands into one output row per ``k``.  MGA targets the
    :data:`HH_TARGET_COUNT` least frequent IPUMS items (deterministic
    targets, so cells cache stably) and each row reports top-k
    precision (= recall for equal-size sets) and promoted-item counts of
    the poisoned, LDPRecover and LDPRecover* estimates.  ``num_users``
    rescales the population (``None`` = paper scale), ``trials`` rounds
    average per cell, ``rng`` seeds the cells, ``workers`` fans trials
    out, ``chunk_users`` switches to the bounded-memory exact simulation,
    ``olh_cohort`` applies seed-cohort perturbation to the OLH cells in
    chunked mode, ``cache`` serves completed cells across runs, and
    ``budget`` switches the cells to adaptive CI-targeted trial
    allocation.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    dataset = load_dataset("ipums", num_users)
    mode: SimulationMode = "chunked" if chunk_users is not None else "fast"
    targets = tail_items(dataset.frequencies, HH_TARGET_COUNT)
    rows = []
    rngs = spawn(rng, len(PROTOCOL_NAMES) * len(HH_BETAS))
    idx = 0
    for protocol_name in PROTOCOL_NAMES:
        for beta in HH_BETAS:
            gen = as_generator(rngs[idx])
            idx += 1
            # Cohort mode only exists at the report level (see figure8_rows).
            protocol = _cell_protocol(
                protocol_name,
                DEFAULT_EPSILON,
                dataset.domain_size,
                olh_cohort if mode == "chunked" else None,
            )
            attack = MGAAttack(domain_size=dataset.domain_size, targets=targets)
            seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
            spec = None
            if cache is not None:
                params = _row_cell_params(
                    protocol, mode, chunk_users,
                    beta=beta, ks=list(HH_KS), eta=DEFAULT_ETA, mode=mode,
                )
                spec = scenario_cell_spec(
                    "heavyhitter", dataset, protocol, (attack,), params, seeds
                )
                if budget is not None:
                    spec["budget"] = budget.fingerprint()

            def task_for(seed: np.random.SeedSequence) -> _HHTask:
                return _HHTask(
                    dataset, protocol, attack, beta, HH_KS, DEFAULT_ETA,
                    mode, chunk_users, seed,
                )

            cell_meta: list[Optional[dict[str, object]]] = [None]

            def compute() -> dict[str, object]:
                # One cell per (protocol, beta): the simulation does not
                # depend on k, so every HH_KS entry is read off the same
                # trials and the cached payload carries all of them.
                stats, cell_meta[0] = _cell_trial_stats(
                    _heavyhitter_trial, task_for, seeds, workers, budget, cache, spec
                )
                per_k = {
                    str(k): _stat_columns(
                        {metric: stats[f"{metric}_k{k}"] for metric in _HH_COLUMNS},
                        _HH_COLUMNS,
                    )
                    for k in HH_KS
                }
                return {"cell": f"mga-{protocol_name}", "beta": beta, "per_k": per_k}

            payload = _cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0])
            if SHARD_PLACEHOLDER_KEY in payload:
                # Placeholder payload from the shard/enumeration cache
                # adapters (the cell belongs to another shard, or only its
                # spec is being recorded): those callers discard the rows,
                # so pass it through instead of expanding.  Any other
                # payload must carry the per-k schema — fail loudly if not.
                rows.append(payload)
                continue
            per_k = cast("dict[str, dict[str, object]]", payload["per_k"])
            for k in HH_KS:
                rows.append(
                    {"cell": payload["cell"], "beta": beta, "k": k, **per_k[str(k)]}
                )
    return rows


# ----------------------------------------------------------------------
# Evolving-population epoch sweep
# ----------------------------------------------------------------------
#: Collection epochs per ``epochs`` cell.
EPOCH_COUNT = 6
#: Per-epoch relative population drift of the ``epochs`` sweep.
EPOCH_DRIFT = 0.05
#: Number of (least frequent) items the scheduled MGA promotes.
EPOCH_TARGET_COUNT = 5
#: Collectors in the fan-in cells (reports split round-robin, states merged).
EPOCH_COLLECTORS = 3
#: Epochs of history the cross-epoch detector needs before it can fit.
EPOCH_HISTORY_MIN = 2
#: The mid-stream attack shapes of the ``epochs`` sweep: always-on,
#: bursting on mid-stream (clean history for the detector to fit on),
#: and adversary-fraction drift from nothing to full strength.
EPOCH_SCHEDULES: tuple[AttackSchedule, ...] = (
    AttackSchedule.constant(0.05),
    AttackSchedule.burst(0.15, at=3),
    AttackSchedule.ramp(0.0, 0.15),
)

#: Default genuine population of the ``epochs`` exhibit (``num_users=None``):
#: reduced below paper scale because every trial materializes
#: :data:`EPOCH_COUNT` report batches.
_EPOCH_DEFAULT_USERS = 20_000

_EPOCH_COLUMNS = (
    "mse_before",
    "mse_recover",
    "mse_star",
    "fg_before",
    "fg_recover",
    "fg_star",
)


def detection_f1(flagged: Sequence[int], truth: Sequence[int]) -> float:
    """F1 of a detector's flagged item set against the true target set.

    Clean epochs have an empty ``truth``: a silent detector scores a
    perfect ``1.0`` there and any false alarm scores ``0.0``, so the
    per-epoch F1 column penalizes both missed bursts and spurious flags.
    """
    flagged_set, truth_set = set(map(int, flagged)), set(map(int, truth))
    if not truth_set:
        return 1.0 if not flagged_set else 0.0
    true_positives = len(flagged_set & truth_set)
    if true_positives == 0:
        return 0.0
    precision = true_positives / len(flagged_set)
    recall = true_positives / len(truth_set)
    return 2.0 * precision * recall / (precision + recall)


@dataclass(frozen=True)
class _EpochTask:
    """Picklable per-trial unit of the evolving-population scenario.

    One trial is a full multi-epoch collection: the population drifts
    epoch to epoch, the scheduled attack injects its per-epoch malicious
    batches, and every epoch's reports stream through the online
    :class:`repro.serve.RecoveryService` — directly, or via
    ``collectors`` round-robin :class:`~repro.sim.streaming.AggregatorState`
    instances fanned in through
    :func:`~repro.sim.streaming.fan_in` / ``absorb`` (byte-equal by the
    merge arithmetic, which the fan-in cells demonstrate).
    """

    dataset: Dataset
    protocol: FrequencyOracle
    scheduled: ScheduledAttack
    drift: float
    eta: float
    collectors: int
    chunk_users: Optional[int]
    seed: np.random.SeedSequence


def _epoch_trial(task: _EpochTask) -> dict[str, float]:
    """One evolving-population trial: recovery quality per epoch.

    RNG discipline matches :func:`repro.sim.history.simulate_history`:
    child stream 0 drives the population drift and children ``1..epochs``
    the per-epoch collection + crafting, so the epoch-``e`` draws are
    invariant to the horizon.  Emits per-epoch ``_e<e>``-suffixed
    metrics: MSE of the raw / LDPRecover / LDPRecover* views against the
    epoch's true (drifted) frequencies, target frequency gain before and
    after recovery, and — once :data:`EPOCH_HISTORY_MIN` epochs of
    history exist — the F1 of a z-score detector fitted on the *prior*
    epochs' raw views against the attack's true per-epoch activity.
    """
    from repro.serve.service import RecoveryService  # deferred: serve builds on sim

    gen = np.random.default_rng(task.seed)
    protocol, scheduled = task.protocol, task.scheduled
    num_epochs = scheduled.num_epochs
    streams = spawn(gen, num_epochs + 1)
    drift_gen, epoch_gens = streams[0], streams[1:]
    service = RecoveryService(protocol, eta=task.eta, chunk_users=task.chunk_users)
    states = [
        AggregatorState(protocol, chunk_users=task.chunk_users)
        for _ in range(task.collectors)
    ]
    targets = [int(t) for t in np.asarray(scheduled.target_items)]
    current = task.dataset
    truths: list[np.ndarray] = []
    genuine_freqs: list[np.ndarray] = []
    injected: list[int] = []
    for epoch, child in enumerate(epoch_gens):
        name = f"e{epoch}"
        n = current.num_users
        items = counts_to_items(current.counts, child)
        genuine = protocol.perturb(items, child)
        m, malicious = scheduled.craft_epoch(protocol, epoch, n, child)
        reports = (
            genuine if malicious is None else protocol.concat_reports(genuine, malicious)
        )
        if task.collectors == 1:
            service.ingest(name, reports)
        else:
            lanes = np.arange(protocol.num_reports(reports)) % task.collectors
            for lane, state in enumerate(states):
                state.ingest(name, protocol.select_reports(reports, lanes == lane))
        truths.append(current.frequencies)
        genuine_freqs.append(
            protocol.estimate_frequencies(protocol.support_counts(genuine), n)
        )
        injected.append(m)
        if task.drift > 0.0:
            current = drift_dataset(current, task.drift, drift_gen)
    if task.collectors > 1:
        service.absorb(fan_in(states))
    raw = [
        service.frequencies(f"e{epoch}").frequencies for epoch in range(num_epochs)
    ]
    out: dict[str, float] = {}
    for epoch in range(num_epochs):
        name = f"e{epoch}"
        recovered = service.frequencies(name, "recover").frequencies
        star = service.frequencies(name, "recover_star", targets).frequencies
        out[f"mse_before_e{epoch}"] = mse(truths[epoch], raw[epoch])
        out[f"mse_recover_e{epoch}"] = mse(truths[epoch], recovered)
        out[f"mse_star_e{epoch}"] = mse(truths[epoch], star)
        out[f"fg_before_e{epoch}"] = frequency_gain(
            genuine_freqs[epoch], raw[epoch], targets
        )
        out[f"fg_recover_e{epoch}"] = frequency_gain(
            genuine_freqs[epoch], recovered, targets
        )
        out[f"fg_star_e{epoch}"] = frequency_gain(genuine_freqs[epoch], star, targets)
        if epoch >= EPOCH_HISTORY_MIN:
            detector = ZScoreOutlierDetector().fit(np.stack(raw[:epoch]))
            flagged = detector.detect(raw[epoch])
            truth = targets if injected[epoch] > 0 else []
            out[f"detection_f1_e{epoch}"] = detection_f1(flagged, truth)
    return out


def _epoch_columns(epoch: int) -> tuple[str, ...]:
    """The metric columns epoch ``epoch``'s row carries."""
    if epoch >= EPOCH_HISTORY_MIN:
        return _EPOCH_COLUMNS + ("detection_f1",)
    return _EPOCH_COLUMNS


def epochs_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 13,
    workers: Optional[int] = 1,
    chunk_users: Optional[int] = None,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``epochs``: per-epoch recovery quality under drift + schedules.

    One simulated cell per (protocol, schedule) over all three frequency
    oracles and :data:`EPOCH_SCHEDULES`, plus one fan-in cell per
    protocol (the burst schedule split round-robin across
    :data:`EPOCH_COLLECTORS` collectors and merged) — each cell expands
    into one output row per epoch.  The population drifts
    :data:`EPOCH_DRIFT` per epoch off a dedicated stream
    (:func:`repro.sim.history.drift_dataset` semantics), MGA promotes the
    :data:`EPOCH_TARGET_COUNT` least frequent IPUMS items at the
    schedule's per-epoch fraction, and every epoch's reports stream
    through the online :class:`repro.serve.RecoveryService` — the exact
    numbers a live deployment would serve, cached/sharded like any batch
    cell.  ``num_users`` sizes each epoch's genuine population (``None``
    = 20k), ``trials`` rounds average per cell, ``rng`` seeds the cells,
    ``workers`` fans trials out, ``chunk_users`` bounds the streaming
    fold's slice size (execution-only: it cannot change results and
    stays out of cache keys), ``cache`` serves completed cells across
    runs, and ``budget`` switches the cells to adaptive CI-targeted
    trial allocation.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    dataset = load_dataset(
        "ipums", _EPOCH_DEFAULT_USERS if num_users is None else int(num_users)
    )
    targets = tail_items(dataset.frequencies, EPOCH_TARGET_COUNT)
    cells = [
        (protocol_name, schedule, 1)
        for protocol_name in PROTOCOL_NAMES
        for schedule in EPOCH_SCHEDULES
    ] + [
        (protocol_name, EPOCH_SCHEDULES[1], EPOCH_COLLECTORS)
        for protocol_name in PROTOCOL_NAMES
    ]
    rows = []
    rngs = spawn(rng, len(cells))
    for (protocol_name, schedule, collectors), cell_rng in zip(cells, rngs):
        gen = as_generator(cell_rng)
        protocol = _cell_protocol(protocol_name, DEFAULT_EPSILON, dataset.domain_size)
        scheduled = ScheduledAttack(
            MGAAttack(domain_size=dataset.domain_size, targets=targets),
            schedule,
            EPOCH_COUNT,
        )
        seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
        spec = None
        if cache is not None:
            spec = scenario_cell_spec(
                "epochs",
                dataset,
                protocol,
                (scheduled.attack,),
                {
                    "schedule": fingerprint_attack_schedule(schedule),
                    "epochs": EPOCH_COUNT,
                    "drift": EPOCH_DRIFT,
                    "eta": DEFAULT_ETA,
                    "collectors": collectors,
                },
                seeds,
            )
            if budget is not None:
                spec["budget"] = budget.fingerprint()

        def task_for(seed: np.random.SeedSequence) -> _EpochTask:
            return _EpochTask(
                dataset=dataset,
                protocol=protocol,
                scheduled=scheduled,
                drift=EPOCH_DRIFT,
                eta=DEFAULT_ETA,
                collectors=collectors,
                chunk_users=chunk_users,
                seed=seed,
            )

        cell_meta: list[Optional[dict[str, object]]] = [None]

        def compute() -> dict[str, object]:
            # One cell per (protocol, schedule, collectors): every epoch
            # is read off the same streamed trials, so the cached payload
            # carries all of them (the per_k pattern of heavyhitter_rows).
            stats, cell_meta[0] = _cell_trial_stats(
                _epoch_trial, task_for, seeds, workers, budget, cache, spec
            )
            per_epoch = {
                str(epoch): _stat_columns(
                    {
                        metric: stats[f"{metric}_e{epoch}"]
                        for metric in _epoch_columns(epoch)
                    },
                    _epoch_columns(epoch),
                )
                for epoch in range(EPOCH_COUNT)
            }
            return {
                "cell": f"{schedule.kind}-{protocol_name}-c{collectors}",
                "protocol": protocol_name,
                "schedule": schedule.describe(),
                "collectors": collectors,
                "betas": list(schedule.betas(EPOCH_COUNT)),
                "per_epoch": per_epoch,
            }

        payload = _cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0])
        if SHARD_PLACEHOLDER_KEY in payload:
            # Placeholder from the shard/enumeration cache adapters — the
            # callers discard the rows, so pass it through unexpanded.
            rows.append(payload)
            continue
        per_epoch = cast("dict[str, dict[str, object]]", payload["per_epoch"])
        betas = cast("list[float]", payload["betas"])
        for epoch in range(EPOCH_COUNT):
            row: dict[str, object] = {
                "cell": payload["cell"],
                "schedule": payload["schedule"],
                "collectors": payload["collectors"],
                "epoch": epoch,
                "beta": betas[epoch],
                **per_epoch[str(epoch)],
            }
            if epoch < EPOCH_HISTORY_MIN:
                # The exporters require uniform columns across rows, so
                # warm-up epochs (no usable history yet) carry null
                # detection scores instead of omitting the columns.
                row["detection_f1"] = None
                row["detection_f1±"] = None
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Defense shoot-out sweep
# ----------------------------------------------------------------------
#: The attack kinds of the ``defenses`` sweep (targeted and adaptive).
DEFENSE_ATTACKS = ("mga", "aa")
#: Privacy budgets of the ``defenses`` sweep.
DEFENSE_EPSILONS = (0.5, 2.0)
#: Malicious fractions of the ``defenses`` sweep.
DEFENSE_BETAS = (0.05, 0.15)
#: The competing defenses, in the order the winner column considers them.
DEFENSE_METHODS = (
    "normalization",
    "detection",
    "kmeans",
    "recover",
    "recover_star",
)

#: Default genuine population of the ``defenses`` exhibit
#: (``num_users=None``); sampled-mode cost is O(``num_users``).
_DEFENSE_DEFAULT_USERS = 40_000

_DEFENSE_COLUMNS = ("mse_before",) + tuple(
    f"mse_{method}" for method in DEFENSE_METHODS
) + ("fg_before",) + tuple(f"fg_{method}" for method in DEFENSE_METHODS)


@dataclass(frozen=True)
class _DefenseTask:
    """Picklable per-trial unit of the defense shoot-out scenario.

    One ``sampled``-mode poisoning round serves every competitor: the
    report-level defenses (Detection, k-means) rescan the same raw
    reports the estimate-level ones (normalization, LDPRecover,
    LDPRecover*) never need.
    """

    dataset: Dataset
    protocol: FrequencyOracle
    attack: MGAAttack
    beta: float
    eta: float
    aa_top_k: int
    seed: np.random.SeedSequence


def _defense_trial(task: _DefenseTask) -> dict[str, float]:
    """One shoot-out trial: every defense against the same poisoned round.

    The target items feeding Detection and LDPRecover* come from
    :func:`repro.sim.engine.resolve_star_targets` — explicit for MGA, the
    top-increase rule for the adaptive attack — exactly the paper's
    Section VI-A4 setup.  Emits ``mse_*`` against the true frequencies
    and ``fg_*`` target frequency gain against the clean aggregate for
    the undefended estimate and each :data:`DEFENSE_METHODS` entry.
    """
    gen = np.random.default_rng(task.seed)
    trial = run_trial(
        task.dataset, task.protocol, task.attack, beta=task.beta, mode="sampled",
        rng=gen,
    )
    truth = trial.true_frequencies
    poisoned = trial.poisoned_frequencies
    targets = resolve_star_targets(task.attack, trial, task.aa_top_k)
    target_list = [] if targets is None else [int(t) for t in targets]
    kmeans_recovery, _defense = recover_with_kmeans(
        task.protocol, trial.reports, rng=gen
    )
    estimates = {
        "before": poisoned,
        "normalization": project_onto_simplex_sort(poisoned),
        "detection": detect_and_aggregate(
            task.protocol, trial.reports, target_list
        ).frequencies,
        "kmeans": kmeans_recovery.frequencies,
        "recover": recover_frequencies(
            poisoned, task.protocol, eta=task.eta
        ).frequencies,
        "recover_star": recover_frequencies(
            poisoned, task.protocol, eta=task.eta, target_items=target_list
        ).frequencies,
    }
    out: dict[str, float] = {}
    for label, estimate in estimates.items():
        out[f"mse_{label}"] = mse(truth, estimate)
        out[f"fg_{label}"] = frequency_gain(
            trial.genuine_frequencies, estimate, target_list
        )
    return out


def defenses_rows(
    num_users: Optional[int] = None,
    trials: int = 5,
    rng: RngLike = 14,
    workers: Optional[int] = 1,
    cache: Optional[CellCache] = None,
    budget: Optional[TrialBudget] = None,
) -> list[dict[str, object]]:
    """Scenario ``defenses``: the defense shoot-out with a winner per regime.

    One cell per (attack, epsilon, beta) regime on the
    :data:`DEFENSE_ATTACKS` × :data:`DEFENSE_EPSILONS` ×
    :data:`DEFENSE_BETAS` grid, all over OUE on the IPUMS workload:
    Detection, the k-means defense (LDPRecover-KM), simplex-projection
    normalization, LDPRecover and LDPRecover* each repair the *same*
    ``sampled``-mode poisoned rounds, so their columns are paired
    comparisons.  Every ``mse_*`` / ``fg_*`` column carries its ``±``
    95%-CI companion, and the ``winner`` column names the
    :data:`DEFENSE_METHODS` entry with the lowest mean MSE in that
    regime — the winner-per-regime table reviewers ask for.
    ``num_users`` sizes the genuine population (``None`` = 40k),
    ``trials`` rounds average per cell, ``rng`` seeds the cells,
    ``workers`` fans trials out, ``cache`` serves completed cells across
    runs, and ``budget`` switches the cells to adaptive CI-targeted
    trial allocation.
    """
    if trials < 1:
        raise InvalidParameterError(f"trials must be >= 1, got {trials}")
    dataset = load_dataset(
        "ipums", _DEFENSE_DEFAULT_USERS if num_users is None else int(num_users)
    )
    rows = []
    cells = [
        (attack_kind, epsilon, beta)
        for attack_kind in DEFENSE_ATTACKS
        for epsilon in DEFENSE_EPSILONS
        for beta in DEFENSE_BETAS
    ]
    rngs = spawn(rng, len(cells))
    for (attack_kind, epsilon, beta), cell_rng in zip(cells, rngs):
        gen = as_generator(cell_rng)
        protocol = _cell_protocol("oue", epsilon, dataset.domain_size)
        attack = _make_attack(attack_kind, dataset.domain_size, gen)
        seeds = spawn_sequences(gen, trials if budget is None else budget.max_trials)
        spec = None
        if cache is not None:
            spec = scenario_cell_spec(
                "defenses",
                dataset,
                protocol,
                (attack,),
                {
                    "beta": beta,
                    "epsilon": epsilon,
                    "eta": DEFAULT_ETA,
                    "aa_top_k": 5,
                    "mode": "sampled",
                },
                seeds,
            )
            if budget is not None:
                spec["budget"] = budget.fingerprint()

        def task_for(seed: np.random.SeedSequence) -> _DefenseTask:
            return _DefenseTask(
                dataset=dataset,
                protocol=protocol,
                attack=attack,
                beta=beta,
                eta=DEFAULT_ETA,
                aa_top_k=5,
                seed=seed,
            )

        cell_meta: list[Optional[dict[str, object]]] = [None]

        def compute() -> dict[str, object]:
            stats, cell_meta[0] = _cell_trial_stats(
                _defense_trial, task_for, seeds, workers, budget, cache, spec
            )
            winner = min(DEFENSE_METHODS, key=lambda m: stats[f"mse_{m}"].mean)
            return {
                "cell": f"{attack_kind}-oue",
                "attack": attack_kind,
                "epsilon": epsilon,
                "beta": beta,
                "winner": winner,
                **_stat_columns(stats, _DEFENSE_COLUMNS),
            }

        rows.append(_cached_cell_row(cache, spec, compute, meta=lambda: cell_meta[0]))
    return rows


# ----------------------------------------------------------------------
# The scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioExhibit:
    """One registered scenario sweep: a generator plus its engine knobs.

    ``name`` is the registry key (the CLI's ``--exhibit`` value),
    ``description`` the one-liner shown by ``ldprecover list``, and
    ``rows`` the generator callable (``kv_rows``-shaped: it must accept
    ``num_users``, ``trials``, ``rng``, ``workers`` and ``cache``
    keywords, plus ``budget`` to support adaptive CI-targeted sweeps).
    ``uses_chunk_users`` / ``uses_olh_cohort`` declare which
    optional engine knobs the generator additionally accepts — the sweep
    dispatch (:meth:`run`) forwards only declared knobs, and
    :meth:`repro.sim.shard.SweepConfig.digest` drops undeclared ones so
    workers passing an inapplicable flag still report under the same
    sweep digest.
    """

    name: str
    description: str
    rows: Callable[..., list[dict[str, object]]]
    uses_chunk_users: bool = False
    uses_olh_cohort: bool = False

    def run(
        self,
        *,
        num_users: Optional[int] = None,
        trials: int = 5,
        rng: RngLike = None,
        workers: Optional[int] = 1,
        chunk_users: Optional[int] = None,
        olh_cohort: Optional[int] = None,
        cache: Optional[CellCache] = None,
        budget: Optional[TrialBudget] = None,
    ) -> list[dict[str, object]]:
        """Execute the scenario sweep and return its exhibit rows.

        ``num_users`` / ``trials`` / ``rng`` / ``workers`` / ``cache``
        forward to the generator unconditionally; ``chunk_users`` and
        ``olh_cohort`` forward only when the exhibit declares support for
        them (undeclared knobs are dropped — they cannot shape the
        cells, exactly like the figure generators that ignore them), and
        ``budget`` forwards only when one is actually set, so generators
        that predate adaptive budgets keep working for fixed-budget
        sweeps (requesting ``--target-ci`` against one fails loudly).
        """
        kwargs: dict[str, object] = {
            "num_users": num_users,
            "trials": trials,
            "rng": rng,
            "workers": workers,
            "cache": cache,
        }
        if budget is not None:
            kwargs["budget"] = budget
        if self.uses_chunk_users:
            kwargs["chunk_users"] = chunk_users
        if self.uses_olh_cohort:
            kwargs["olh_cohort"] = olh_cohort
        return self.rows(**kwargs)


#: Registered scenario exhibits by name; :class:`repro.sim.shard.SweepConfig`
#: and the CLI dispatch any name in here exactly like a paper figure.
SCENARIOS: dict[str, ScenarioExhibit] = {
    "kv": ScenarioExhibit(
        name="kv",
        description="key-value poisoning recovery across epsilon and beta",
        rows=kv_rows,
    ),
    "heavyhitter": ScenarioExhibit(
        name="heavyhitter",
        description="top-k heavy-hitter promotion and repair across protocols, beta and k",
        rows=heavyhitter_rows,
        uses_chunk_users=True,
        uses_olh_cohort=True,
    ),
    "epochs": ScenarioExhibit(
        name="epochs",
        description=(
            "evolving-population recovery per epoch under drift and "
            "mid-stream attack schedules, streamed through the recovery service"
        ),
        rows=epochs_rows,
        uses_chunk_users=True,
    ),
    "defenses": ScenarioExhibit(
        name="defenses",
        description=(
            "defense shoot-out: Detection, k-means, normalization, LDPRecover "
            "and LDPRecover* on one (attack, epsilon, beta) grid with a winner "
            "per regime"
        ),
        rows=defenses_rows,
    ),
}


def scenario_names() -> tuple[str, ...]:
    """Registered scenario exhibit names, in registration order."""
    return tuple(SCENARIOS)


def register_scenario(exhibit: ScenarioExhibit) -> None:
    """Add ``exhibit`` to the :data:`SCENARIOS` registry.

    The name must not collide with an existing scenario or with a paper
    figure (:attr:`repro.sim.shard.SweepConfig.FIGURES`); once
    registered, ``SweepConfig(figure=exhibit.name)`` — and therefore
    ``ldprecover run|shard --exhibit <name>`` — dispatches it like any
    built-in exhibit.
    """
    from repro.sim.shard import SweepConfig  # deferred: shard imports this module

    if exhibit.name in SCENARIOS or exhibit.name in SweepConfig.FIGURES:
        raise InvalidParameterError(
            f"scenario name {exhibit.name!r} is already taken"
        )
    SCENARIOS[exhibit.name] = exhibit
