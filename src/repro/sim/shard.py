"""Cache-coordinated multi-machine sharding of exhibit sweeps.

The paper's exhibits are grids of pure experimental cells, and the cell
cache (:mod:`repro.sim.cache`) already identifies every cell by the
canonical hash of its full spec.  This module turns a *shared* cache
directory into the coordination layer for running one sweep across many
machines:

* :class:`SweepConfig` names one exhibit sweep — the same knobs the CLI's
  ``run`` subcommand takes — and can execute it against any cache.
* :func:`enumerate_cells` lists the sweep's cells (key + kind, in
  generation order) **without simulating anything**: the generators run
  against a recording cache whose every lookup "hits" with a placeholder,
  so the exact per-cell specs/seeds are reproduced at zero cost.
* :func:`run_shard` executes one shard's share of the cells through the
  ordinary engine, writing results into the shared cache.  Cells are
  assigned either **statically** (``shard_index``/``shard_count``,
  deterministic hash-mod over the canonical key — see
  :func:`shard_of_key`) or **dynamically** via :class:`ClaimQueue`
  work-stealing: atomic ``.claim`` files next to the cache entries, with
  a stale-claim TTL so a crashed worker's cells are re-claimable.
* :func:`sweep_status` reports done / claimed / missing cells, and
  :func:`merge_sweep` renders the final rows from the fully populated
  cache — bit-identical to an unsharded run, because every row is either
  the stored payload itself or rebuilt from the same cached
  ``RecoveryEvaluation``; per-shard timing statistics merge exactly via
  :meth:`repro.sim.engine.Welford.merge`.

Determinism: a cell's spec (and therefore its key, its seeds, and its
result) depends only on the sweep configuration, never on which shard
runs it, so ``shards=N`` equals ``shards=1`` bit for bit.  Exactly-once
execution holds whenever claims outlive their cells (pick
``claim_ttl`` larger than the slowest cell); even an expired-claim double
run is harmless because both writers store identical payloads atomically.

Shard coordination state lives under ``<cache root>/_shard/`` —
``claims/*.claim`` plus per-shard ``reports/**/*.report`` files — which
the cache's own maintenance ignores (it only considers ``*.json``
entries).  Because the root embeds the versioned cache tag, machines
running different code never share claims either.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import socket
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Optional, Protocol

from repro.exceptions import InvalidParameterError, ShardIncompleteError
from repro.sim import figures, scenarios
from repro.sim.cache import (
    SHARD_PLACEHOLDER_KEY,
    CellBlockStore,
    CellCache,
    canonical_key,
)
from repro.sim.engine import TASK_COUNTER, TrialBudget, Welford
from repro.sim.experiment import RecoveryEvaluation

__all__ = [
    "DEFAULT_CLAIM_TTL",
    "ClaimQueue",
    "EnumeratedCell",
    "ShardReport",
    "SweepConfig",
    "SweepStatus",
    "enumerate_cells",
    "merge_sweep",
    "merged_cell_seconds",
    "run_shard",
    "shard_of_key",
    "sweep_status",
]

#: Default stale-claim horizon (seconds): a ``.claim`` file older than
#: this is treated as abandoned by a crashed worker and may be stolen.
#: Pick a TTL comfortably above the slowest cell of the sweep.
DEFAULT_CLAIM_TTL = 1800.0


# ----------------------------------------------------------------------
# Sweep configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepConfig:
    """One exhibit sweep: which figure to regenerate, with which knobs.

    Mirrors the CLI's ``run``/``shard`` flags — ``figure`` picks the
    generator (a paper figure from :attr:`FIGURES` or a registered
    scenario exhibit from :data:`repro.sim.scenarios.SCENARIOS`),
    ``dataset``/``parameter`` apply to the exhibits that take
    them, ``num_users``/``trials``/``seed`` shape the cells, and
    ``workers``/``chunk_users``/``olh_cohort`` are forwarded to the
    engine.  Only ``workers`` is a pure execution knob that shards may
    vary freely (it never enters a cell key); every other field must
    match across the fleet — including ``chunk_users``, whose *presence*
    switches fast-mode exhibits to ``mode="chunked"``, a spec field of
    every cell key (and whose resolved size additionally keys
    cohort-mode OLH cells).  ``target_ci``/``max_trials``/``trial_batch``
    select adaptive CI-targeted trial allocation (see :meth:`budget`);
    they shape every cell's budget checkpoints and therefore must also
    match across the fleet.
    """

    figure: str
    dataset: str = "ipums"
    parameter: str = "beta"
    num_users: Optional[int] = None
    trials: int = 5
    seed: int = 0
    workers: Optional[int] = 1
    chunk_users: Optional[int] = None
    olh_cohort: Optional[int] = None
    target_ci: Optional[float] = None
    max_trials: Optional[int] = None
    trial_batch: Optional[int] = None

    #: Paper figures runnable as sharded sweeps (the CLI's ``--figure``
    #: names); scenario exhibits (:data:`repro.sim.scenarios.SCENARIOS`)
    #: dispatch through the same machinery — see :meth:`exhibit_names`.
    FIGURES = (
        "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1",
    )

    @classmethod
    def exhibit_names(cls) -> tuple[str, ...]:
        """Every dispatchable exhibit: paper figures plus registered
        scenario sweeps (``--figure`` / ``--exhibit`` choices)."""
        return cls.FIGURES + scenarios.scenario_names()

    def __post_init__(self) -> None:
        if self.figure not in self.exhibit_names():
            raise InvalidParameterError(
                f"figure must be one of {list(self.exhibit_names())}, "
                f"got {self.figure!r}"
            )
        self.budget()  # surface inconsistent budget knobs at construction

    def budget(self) -> Optional[TrialBudget]:
        """The sweep's adaptive :class:`~repro.sim.engine.TrialBudget`.

        ``None`` when none of ``target_ci`` / ``max_trials`` /
        ``trial_batch`` is set — the sweep then runs the historical fixed
        ``trials`` budget with byte-identical cell keys and digests.
        Otherwise ``trials`` becomes the budget's ``min_trials`` (the
        first stopping-rule checkpoint), ``max_trials`` defaults to
        ``10 * trials`` and ``trial_batch`` (the checkpoint stride)
        defaults to ``trials``.
        """
        if self.target_ci is None and self.max_trials is None and self.trial_batch is None:
            return None
        return TrialBudget(
            target_halfwidth=self.target_ci,
            min_trials=self.trials,
            max_trials=self.max_trials if self.max_trials is not None else 10 * self.trials,
            batch=self.trial_batch if self.trial_batch is not None else self.trials,
        )

    def run(self, cache: Optional[CellCache]) -> list[dict[str, object]]:
        """Execute the sweep against ``cache`` and return its exhibit rows.

        This is the single dispatch point shared by the CLI's ``run``
        subcommand, shard execution, enumeration, and merging — so every
        one of them reproduces the exact same cells.
        """
        budget = self.budget()
        scenario = scenarios.SCENARIOS.get(self.figure)
        if scenario is not None:
            return scenario.run(
                num_users=self.num_users,
                trials=self.trials,
                rng=self.seed,
                workers=self.workers,
                chunk_users=self.chunk_users,
                olh_cohort=self.olh_cohort,
                cache=cache,
                budget=budget,
            )
        common: dict[str, Any] = dict(
            num_users=self.num_users,
            trials=self.trials,
            rng=self.seed,
            workers=self.workers,
            olh_cohort=self.olh_cohort,
            cache=cache,
            budget=budget,
        )
        chunked = dict(common, chunk_users=self.chunk_users)
        if self.figure == "fig3":
            return figures.figure3_rows(dataset_name=self.dataset, **common)
        if self.figure == "fig4":
            return figures.figure4_rows(dataset_name=self.dataset, **common)
        if self.figure in ("fig5", "fig6"):
            dataset = {"fig5": "ipums", "fig6": "fire"}[self.figure]
            return figures.sweep_rows(dataset, self.parameter, **chunked)
        if self.figure == "fig7":
            return figures.figure7_rows(**chunked)
        if self.figure == "fig8":
            return figures.figure8_rows(**chunked)
        if self.figure == "fig9":
            return figures.figure9_rows(**common)
        if self.figure == "fig10":
            return figures.figure10_rows(**chunked)
        if self.figure == "table1":
            return figures.table1_rows(**chunked)
        raise AssertionError(f"unhandled figure {self.figure!r}")  # pragma: no cover

    def digest(self) -> str:
        """Short stable id of this sweep's cell-defining fields.

        Groups shard reports of the same sweep together, so only fields
        the chosen ``figure`` actually consumes participate: ``workers``
        never (it cannot change the cells), ``dataset`` only for the
        exhibits that take one (fig3/fig4), ``parameter`` only for the
        sweeps (fig5/fig6), ``chunk_users`` only where the generator
        accepts it.  A worker that passes a flag its figure ignores
        (``--dataset fire`` on fig8) therefore still reports under the
        same digest as every other worker of that sweep.  The adaptive
        budget knobs participate only when at least one is set, so every
        fixed-budget digest is byte-identical to what it was before the
        knobs existed.
        """
        spec = asdict(self)
        spec.pop("workers")
        if self.budget() is None:
            for knob in ("target_ci", "max_trials", "trial_batch"):
                spec.pop(knob)
        scenario = scenarios.SCENARIOS.get(self.figure)
        if scenario is not None:
            # Scenario generators never take dataset/parameter; the other
            # engine knobs participate only when the exhibit declares them.
            spec.pop("dataset")
            spec.pop("parameter")
            if not scenario.uses_chunk_users:
                spec.pop("chunk_users")
            if not scenario.uses_olh_cohort:
                spec.pop("olh_cohort")
            return canonical_key(spec)[:12]
        if self.figure not in ("fig3", "fig4"):
            spec.pop("dataset")
        if self.figure not in ("fig5", "fig6"):
            spec.pop("parameter")
        if self.figure in ("fig3", "fig4", "fig9"):
            spec.pop("chunk_users")
        return canonical_key(spec)[:12]


# ----------------------------------------------------------------------
# Cell enumeration (zero simulation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnumeratedCell:
    """One cell of a sweep: its position, canonical key, and payload kind."""

    index: int
    key: str
    kind: str


def _placeholder_evaluation(spec: dict[str, Any]) -> RecoveryEvaluation:
    """A throwaway :class:`RecoveryEvaluation` standing in for a cell that
    this process will not simulate; its metric fields are defaults and the
    rows built from it are discarded (only ``spec``'s identity matters)."""
    return RecoveryEvaluation(
        dataset=str((spec.get("dataset") or {}).get("name", "?")),
        protocol=str((spec.get("protocol") or {}).get("__type__", "?")),
        attack="placeholder",
        beta=float(spec.get("beta", 0.0)),
        eta=float(spec.get("eta", 0.0)),
        trials=int(spec.get("trials", 0)),
    )


#: Marker key identifying placeholder rows produced for skipped cells
#: (the shared :data:`repro.sim.cache.SHARD_PLACEHOLDER_KEY`, so row
#: generators can recognize pass-through payloads without importing this
#: module).
_PLACEHOLDER = SHARD_PLACEHOLDER_KEY


class _RecordingCache(CellCache):
    """A cache whose every lookup hits with a placeholder: running a
    generator against it records each cell's spec (in generation order)
    while executing zero simulation tasks and touching no disk."""

    def __init__(self) -> None:
        super().__init__(cache_dir=os.devnull, tag="enumeration")
        self.specs: list[dict[str, Any]] = []

    def _record(self, spec: dict[str, Any]) -> None:
        self.specs.append(spec)

    def get(self, spec: dict[str, Any]) -> Optional[dict[str, Any]]:
        """Record ``spec`` and report a (placeholder) hit."""
        self._record(spec)
        return {_PLACEHOLDER: True}

    def get_evaluation(self, spec: dict[str, Any]) -> Optional[RecoveryEvaluation]:
        """Record ``spec`` and report a (placeholder) hit."""
        self._record(spec)
        return _placeholder_evaluation(spec)

    def put(
        self,
        spec: dict[str, Any],
        payload: dict[str, Any],
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Unreachable in normal enumeration (every get hits); no disk IO."""
        return pathlib.Path(os.devnull)  # pragma: no cover

    def put_evaluation(
        self,
        spec: dict[str, Any],
        evaluation: RecoveryEvaluation,
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        """Unreachable in normal enumeration (every get hits); no disk IO."""
        return pathlib.Path(os.devnull)  # pragma: no cover


def enumerate_cells(config: SweepConfig) -> list[EnumeratedCell]:
    """List ``config``'s experimental cells without simulating any of them.

    Runs the sweep's generator against a recording cache, so the cell
    specs — including every per-trial seed — are byte-identical to what a
    real run produces, and the canonical keys match the entries a real
    run stores.  Order is generation order; duplicate specs (there are
    none in the shipped exhibits) would keep their first position.
    """
    recorder = _RecordingCache()
    config.run(recorder)
    cells: list[EnumeratedCell] = []
    seen: set[str] = set()
    for spec in recorder.specs:
        key = canonical_key(spec)
        if key in seen:
            continue  # pragma: no cover - exhibits have no duplicate cells
        seen.add(key)
        cells.append(
            EnumeratedCell(index=len(cells), key=key, kind=str(spec.get("kind", "row")))
        )
    return cells


# ----------------------------------------------------------------------
# Cell assignment: static hash-mod and dynamic claim files
# ----------------------------------------------------------------------
def shard_of_key(key: str, shard_count: int) -> int:
    """Deterministic shard owning ``key`` under static partitioning.

    The canonical key is already a uniform SHA-256 hash, so taking its
    leading 64 bits modulo ``shard_count`` balances cells across shards
    and — crucially — every machine computes the same assignment with no
    communication at all.
    """
    if shard_count < 1:
        raise InvalidParameterError(f"shard_count must be >= 1, got {shard_count}")
    return int(key[:16], 16) % shard_count


class ClaimQueue:
    """Work-stealing queue of ``.claim`` files in a shared directory.

    One claim file per cell key.  Acquisition is atomic — an
    ``O_CREAT | O_EXCL`` create that exactly one contender wins — so two
    machines polling the same shared cache directory never both own a
    live claim.  A claim whose recorded ``claimed_at`` is older than
    ``ttl`` seconds is *stale* (its owner crashed without releasing):
    stealing rewrites it via a temp file + ``os.replace`` (atomic on
    POSIX) and then reads the file back, only treating the claim as won
    when the readback carries the stealer's own token.  Completed cells
    release their claim; crashes release implicitly via the TTL.

    Parameters
    ----------
    directory:
        Where the claim files live (created on first use).
    owner:
        Identity written into claims; defaults to ``host-pid``.
    ttl:
        Stale-claim horizon in seconds (:data:`DEFAULT_CLAIM_TTL`).
        Must exceed the sweep's slowest cell, or a slow-but-alive
        worker's cell may be duplicated (never corrupted: duplicate
        runs of a cell store bit-identical payloads).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        owner: Optional[str] = None,
        ttl: float = DEFAULT_CLAIM_TTL,
    ) -> None:
        if ttl <= 0:
            raise InvalidParameterError(f"ttl must be > 0, got {ttl}")
        self.directory = pathlib.Path(directory)
        self.owner = owner or f"{socket.gethostname()}-{os.getpid()}"
        self.ttl = float(ttl)

    def path_for(self, key: str) -> pathlib.Path:
        """The claim file path of cell ``key``."""
        return self.directory / f"{key}.claim"

    def _record(self) -> dict[str, Any]:
        return {"owner": self.owner, "pid": os.getpid(), "claimed_at": time.time()}

    def peek(self, key: str) -> Optional[dict[str, Any]]:
        """The current claim record of ``key``, or ``None`` when unclaimed.

        An unreadable (half-written or corrupt) claim file reads as a
        record with no owner and ``claimed_at`` taken from the file's
        mtime, so it still ages out via the TTL.
        """
        path = self.path_for(key)
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            if not isinstance(record, dict):
                raise ValueError("claim is not an object")
            return record
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            try:
                return {"owner": None, "claimed_at": path.stat().st_mtime}
            except OSError:
                return None

    def is_stale(self, record: dict[str, Any]) -> bool:
        """Whether a claim ``record`` has outlived the TTL."""
        try:
            claimed_at = float(record.get("claimed_at", 0.0))
        except (TypeError, ValueError):
            claimed_at = 0.0
        return (time.time() - claimed_at) > self.ttl

    def acquire(self, key: str) -> bool:
        """Try to claim cell ``key``; return whether this queue now owns it.

        Re-acquiring a claim this queue already owns succeeds (idempotent
        resume after an interrupted pass).
        """
        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self._record(), separators=(",", ":"))
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            record = self.peek(key)
            if record is None:
                # Released between our create attempt and the peek; retry
                # once — losing the retry race just means someone else won.
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    return False
            else:
                if record.get("owner") == self.owner:
                    return True
                if not self.is_stale(record):
                    return False
                return self._steal(path, payload)
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return True

    def _steal(self, path: pathlib.Path, payload: str) -> bool:
        """Atomically overwrite a stale claim and confirm ownership.

        Two stealers may both ``os.replace``; the readback disambiguates —
        only the one whose token survives owns the cell.  (The tiny window
        where a loser's replace clobbers a winner mid-cell can duplicate
        work, never corrupt it; see the class docstring.)
        """
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".claim.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except OSError:  # pragma: no cover - shared-dir permission races
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return False
        try:
            return path.read_text(encoding="utf-8") == payload
        except OSError:  # pragma: no cover - claim released mid-steal
            return False

    def release(self, key: str) -> None:
        """Drop cell ``key``'s claim (a vanished claim is already released)."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass

    def active(self) -> list[tuple[str, dict[str, Any]]]:
        """All outstanding ``(key, record)`` claims, stale ones included."""
        if not self.directory.is_dir():
            return []
        out = []
        for path in sorted(self.directory.glob("*.claim")):
            record = self.peek(path.name[: -len(".claim")])
            if record is not None:
                out.append((path.name[: -len(".claim")], record))
        return out


# ----------------------------------------------------------------------
# Shard execution
# ----------------------------------------------------------------------
class ShardPolicy(Protocol):
    """Cell-ownership strategy consulted by :class:`_ShardExecutionCache`.

    ``acquire`` decides whether this shard should compute the (missing)
    cell; ``release`` returns ownership after the result is stored (a
    no-op for static assignment).  ``rechecks`` declares whether a peer
    may have completed the cell between the cache miss and a successful
    acquire, in which case the store must be consulted again before
    simulating.
    """

    rechecks: bool

    def acquire(self, key: str) -> bool:
        """Whether this shard should compute the missing cell ``key``."""
        ...

    def release(self, key: str) -> None:
        """Return ownership of ``key`` once its result is stored."""
        ...


class _StaticPolicy:
    """Hash-mod ownership: no coordination files, no release needed."""

    #: Static assignments are exclusive by construction — no peer can have
    #: completed an owned cell between the lookup and the acquire.
    rechecks: bool = False

    def __init__(self, shard_index: int, shard_count: int) -> None:
        self.shard_index = shard_index
        self.shard_count = shard_count

    def acquire(self, key: str) -> bool:
        return shard_of_key(key, self.shard_count) == self.shard_index

    def release(self, key: str) -> None:  # claims only
        pass


class _ClaimPolicy:
    """Dynamic ownership through a :class:`ClaimQueue`."""

    #: A peer may complete and release a cell between our miss and our
    #: successful acquire; re-check the store before simulating.
    rechecks: bool = True

    def __init__(self, queue: ClaimQueue) -> None:
        self.queue = queue

    def acquire(self, key: str) -> bool:
        return self.queue.acquire(key)

    def release(self, key: str) -> None:
        self.queue.release(key)


class _BudgetClaimPolicy:
    """Claim-mode ownership for adaptive-budget sweeps: block-grained.

    Under a :class:`~repro.sim.engine.TrialBudget`, arbitrating whole
    cells would serialize a top-up behind one worker even when the cell
    only needs more trial blocks.  This policy therefore lets *every*
    claims-mode shard enter every missing cell's adaptive driver
    (``acquire`` always succeeds, holding nothing) and moves the
    exactly-once arbitration down to the cell's trial blocks — each block
    range is claimed through the same :class:`ClaimQueue` via
    :class:`_ClaimedBlockStore`, so a block is simulated by exactly one
    worker while its peers await the appended result.  Both workers then
    write byte-identical cell summaries (idempotent puts), which is why
    exactly-once accounting under budgets is asserted on engine tasks,
    not on cells.
    """

    #: A peer may complete the whole cell while this shard polls blocks;
    #: the pre-compute store re-check keeps the common case cheap.
    rechecks: bool = True

    def __init__(self, queue: ClaimQueue) -> None:
        self.queue = queue

    def acquire(self, key: str) -> bool:
        """Always own ``key`` — block claims do the real arbitration."""
        return True

    def release(self, key: str) -> None:
        """Nothing to release: no cell-level claim was taken."""


class _ClaimedBlockStore:
    """A :class:`~repro.sim.cache.CellBlockStore` whose block claims are
    arbitrated through a shard :class:`ClaimQueue`.

    ``load``/``peek``/``append`` delegate to the wrapped store; ``claim``
    and ``release`` map a block's trial range onto a queue key derived
    from the cell's stream key (``<stream-key>.b<start>-<stop>``), so two
    workers extending the same cell contend per block exactly like
    claims-mode shards contend per cell — same atomic create, same
    stale-claim TTL.  Satisfies :class:`repro.sim.engine.TrialBlockStore`.
    """

    def __init__(self, store: CellBlockStore, queue: ClaimQueue) -> None:
        self.store = store
        self.queue = queue

    def _claim_key(self, start: int, stop: int) -> str:
        return f"{self.store.stream_key}.b{start:08d}-{stop:08d}"

    def load(self) -> list[tuple[int, int, list[dict[str, float]]]]:
        """The wrapped store's contiguous block chain (see its ``load``)."""
        return self.store.load()

    def peek(self, start: int, stop: int) -> Optional[list[dict[str, float]]]:
        """The wrapped store's block ``[start, stop)``, if valid on disk."""
        return self.store.peek(start, stop)

    def append(self, start: int, stop: int, per_trial: list[dict[str, float]]) -> Any:
        """Append ``per_trial`` as block ``[start, stop)`` to the wrapped store."""
        return self.store.append(start, stop, per_trial)

    def claim(self, start: int, stop: int) -> bool:
        """Atomically claim block ``[start, stop)`` through the queue."""
        return self.queue.acquire(self._claim_key(start, stop))

    def release(self, start: int, stop: int) -> None:
        """Release block ``[start, stop)``'s claim."""
        self.queue.release(self._claim_key(start, stop))


class _ShardExecutionCache:
    """Cache adapter steering a generator to compute only owned cells.

    Wraps the shared :class:`CellCache`: lookups that hit serve the real
    payload (another shard — or a previous pass — completed the cell);
    misses consult the assignment policy.  Owned cells report the miss so
    the generator computes and stores them; foreign cells return a
    placeholder so the generator moves on without simulating.  Per-cell
    wall times accumulate into a :class:`~repro.sim.engine.Welford`.
    """

    def __init__(self, base: CellCache, policy: ShardPolicy) -> None:
        self.base = base
        self.policy = policy
        self.ran: list[str] = []
        self.served: list[str] = []
        self.skipped: list[str] = []
        self.cell_seconds = Welford()
        self._pending: dict[str, float] = {}

    # -- lookup ---------------------------------------------------------
    def _route(
        self, spec: dict[str, Any], fetch: Callable[[dict[str, Any]], Optional[Any]]
    ) -> tuple[str, Optional[Any], bool]:
        """Resolve one lookup: ``(key, value-if-served, compute?)``.

        ``fetch(spec)`` is the base cache's typed reader
        (:meth:`CellCache.get` or :meth:`CellCache.get_evaluation`), so
        decode failures are counted by the base's own once-per-lookup
        logic.  Stats contract of a shard run: hits count the cells
        served from the shared store, misses the cells this shard
        simulates (including the rare unreadable/stale-shape entry it
        heals) — cells skipped because a peer owns them touch neither
        counter (existence is probed via :meth:`CellCache.contains`,
        outside the stats).
        """
        key = self.base.key_for(spec)
        counted_miss = False
        if self.base.contains(key):
            value = fetch(spec)
            if value is not None:
                self.served.append(key)
                return key, value, False
            counted_miss = True  # unreadable/stale entry: fetch counted it
        if self.policy.acquire(key):
            # Claim races lose to completed entries: a peer may finish and
            # release a cell between our probe and our acquire, so re-check
            # the store before simulating.  Static assignments skip this
            # (exclusive by construction), as does the heal path — an
            # entry that just failed to read should be recomputed, not
            # re-fetched and double-counted.
            if self.policy.rechecks and not counted_miss and self.base.contains(key):
                value = fetch(spec)
                if value is not None:
                    self.policy.release(key)
                    self.served.append(key)
                    return key, value, False
                counted_miss = True
            if not counted_miss:
                self.base.stats.misses += 1
            self._pending[key] = time.monotonic()
            return key, None, True
        self.skipped.append(key)
        return key, None, False

    def get(self, spec: dict[str, Any]) -> Optional[dict[str, Any]]:
        key, payload, compute = self._route(spec, self.base.get)
        if payload is not None:
            return payload
        if compute:
            return None
        return {_PLACEHOLDER: True, "key": key}

    def get_evaluation(self, spec: dict[str, Any]) -> Optional[RecoveryEvaluation]:
        _, evaluation, compute = self._route(spec, self.base.get_evaluation)
        if evaluation is not None:
            return evaluation
        if compute:
            return None
        return _placeholder_evaluation(spec)

    # -- store ----------------------------------------------------------
    def _complete(self, key: str) -> None:
        started = self._pending.pop(key, None)
        if started is not None:
            self.cell_seconds.add(time.monotonic() - started)
        self.ran.append(key)
        self.policy.release(key)

    def put(
        self,
        spec: dict[str, Any],
        payload: dict[str, Any],
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        path = self.base.put(spec, payload, meta=meta)
        self._complete(self.base.key_for(spec))
        return path

    def put_evaluation(
        self,
        spec: dict[str, Any],
        evaluation: RecoveryEvaluation,
        meta: Optional[dict[str, Any]] = None,
    ) -> pathlib.Path:
        path = self.base.put_evaluation(spec, evaluation, meta=meta)
        self._complete(self.base.key_for(spec))
        return path

    # -- appendable trial blocks (adaptive budgets) ---------------------
    def block_store(self, stream_spec: dict[str, Any]) -> Any:
        """The trial-block store of one owned cell's stream, claim-wrapped.

        Generators running under an adaptive budget fetch this for every
        cell they compute; in claims mode the returned store arbitrates
        each block range through the shard's :class:`ClaimQueue`
        (block-exact exactly-once), while static assignment — exclusive
        per cell by construction — uses the base store directly.
        """
        store = self.base.block_store(stream_spec)
        queue = getattr(self.policy, "queue", None)
        if isinstance(queue, ClaimQueue):
            return _ClaimedBlockStore(store, queue)
        return store

    # -- cleanup --------------------------------------------------------
    def abandon_pending(self) -> None:
        """Release claims of cells that started but never completed (an
        exception unwound the generator), so peers can pick them up
        immediately instead of waiting out the TTL."""
        for key in list(self._pending):
            self._pending.pop(key, None)
            self.policy.release(key)


def _shard_dir(cache: CellCache) -> pathlib.Path:
    """Coordination-state directory of a shared cache (tag-scoped)."""
    return cache.root / "_shard"


#: Per-process sequence disambiguating report files written within the
#: same nanosecond tick (back-to-back passes over a fully-cached sweep).
_REPORT_SEQUENCE = itertools.count()


@dataclass
class ShardReport:
    """What one :func:`run_shard` invocation did, persisted for ``status``.

    ``cells_run`` were simulated here, ``cells_served`` came out of the
    shared cache, ``cells_skipped`` belonged to other shards;
    ``tasks_run`` counts engine-level trial tasks (the
    :data:`repro.sim.engine.TASK_COUNTER` delta — zero when a shard finds
    everything cached).  ``cell_seconds`` is the Welford state
    ``{count, mean, m2}`` of per-cell wall times; reports merge exactly
    via :func:`merged_cell_seconds`.
    """

    figure: str
    digest: str
    label: str
    mode: str
    cells_total: int
    cells_run: int
    cells_served: int
    cells_skipped: int
    tasks_run: int
    seconds: float
    cell_seconds: dict[str, float] = field(default_factory=dict)
    created_at: float = 0.0

    def welford(self) -> Welford:
        """The per-cell timing accumulator rebuilt from ``cell_seconds``."""
        state = self.cell_seconds or {}
        return Welford(
            count=int(state.get("count", 0)),
            mean=float(state.get("mean", 0.0)),
            m2=float(state.get("m2", 0.0)),
        )

    def cells_per_second(self) -> Optional[float]:
        """Simulated-cell throughput of this shard (``None`` if it ran none)."""
        if self.cells_run == 0 or self.seconds <= 0:
            return None
        return self.cells_run / self.seconds

    def summary(self) -> str:
        """One-line human rendering (the ``shard run`` output)."""
        rate = self.cells_per_second()
        rendered = "n/a" if rate is None else f"{rate:.2f} cells/s"
        return (
            f"shard {self.label} [{self.mode}] {self.figure}: "
            f"{self.cells_run} run, {self.cells_served} served, "
            f"{self.cells_skipped} skipped of {self.cells_total} cells "
            f"in {self.seconds:.2f}s ({rendered})"
        )


def merged_cell_seconds(reports: list[ShardReport]) -> Welford:
    """Exact merge of every shard's per-cell timing statistics.

    Uses :meth:`repro.sim.engine.Welford.merge` (Chan et al.), so the
    merged mean/variance equal what a single accumulator over all cells
    would have produced — the same guarantee the engine gives sharded
    metric accumulation.  ``reports`` is the list to merge.
    """
    total = Welford()
    for report in reports:
        total.merge(report.welford())
    return total


def _write_report(cache: CellCache, report: ShardReport) -> pathlib.Path:
    """Persist ``report`` atomically under the cache's ``_shard/reports``.

    Every invocation writes its own file (label + pid + creation
    timestamp): a worker that runs several passes — or several workers
    sharing a label — must *accumulate* reports, because ``status`` sums
    ``cells_run`` across them for the exactly-once accounting; an
    overwrite would silently swallow an earlier pass's cells.
    """
    directory = _shard_dir(cache) / "reports" / report.digest
    directory.mkdir(parents=True, exist_ok=True)
    safe_label = "".join(c if c.isalnum() or c in "-_." else "_" for c in report.label)
    stamp = f"{os.getpid()}-{time.time_ns()}-{next(_REPORT_SEQUENCE)}"
    path = directory / f"{safe_label}-{stamp}.report"
    fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(asdict(report), handle, separators=(",", ":"))
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _read_reports(cache: CellCache, digest: str) -> list[ShardReport]:
    """Load every shard report of a sweep ``digest`` (unreadable: skipped)."""
    directory = _shard_dir(cache) / "reports" / digest
    if not directory.is_dir():
        return []
    reports = []
    for path in sorted(directory.glob("*.report")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            reports.append(ShardReport(**data))
        except (ValueError, TypeError, OSError):
            continue
    return reports


def run_shard(
    config: SweepConfig,
    cache: CellCache,
    shard_index: Optional[int] = None,
    shard_count: Optional[int] = None,
    claims: bool = False,
    claim_ttl: float = DEFAULT_CLAIM_TTL,
    label: Optional[str] = None,
) -> ShardReport:
    """Run one shard of ``config``'s sweep against the shared ``cache``.

    Exactly one assignment mode must be selected: **static** —
    ``shard_index`` of ``shard_count``, every machine computes the same
    hash-mod partition of the canonical keys — or **dynamic** —
    ``claims=True``, cells are claimed first-come-first-served through
    atomic ``.claim`` files under the cache root (crashed claimants
    release via the ``claim_ttl`` staleness horizon), which
    self-balances heterogeneous machines.  Either way the shard runs its
    cells through the ordinary engine (so ``config.workers`` etc. apply),
    stores them in ``cache``, and persists a :class:`ShardReport` (named
    by ``label``, defaulting to the static index or the claim owner) that
    ``status``/``merge`` can aggregate.  Already-cached cells are served,
    not re-run — rerunning a finished shard is free.

    In claims mode the on-disk claim owner is always ``label`` (or the
    host-pid default) suffixed with this process's identity, so two
    workers launched with the same ``label`` still contend through the
    queue — a duplicated label can never silently disable the
    exactly-once arbitration — and each worker's report file is distinct.
    """
    static = shard_index is not None or shard_count is not None
    if static == claims:
        raise InvalidParameterError(
            "pick exactly one assignment mode: shard_index/shard_count "
            "(static) or claims=True (dynamic)"
        )
    policy: ShardPolicy
    if static:
        if shard_index is None or shard_count is None:
            raise InvalidParameterError(
                "static sharding needs both shard_index and shard_count"
            )
        if shard_count < 1 or not (0 <= shard_index < shard_count):
            raise InvalidParameterError(
                f"need 0 <= shard_index < shard_count, got "
                f"{shard_index}/{shard_count}"
            )
        policy = _StaticPolicy(shard_index, shard_count)
        mode = "static"
        label = label or f"static-{shard_index}of{shard_count}"
    else:
        owner = None
        if label is not None:
            owner = f"{label}@{socket.gethostname()}-{os.getpid()}"
        queue = ClaimQueue(_shard_dir(cache) / "claims", owner=owner, ttl=claim_ttl)
        # Adaptive budgets arbitrate per trial block instead of per cell:
        # a top-up of an existing cell must not serialize behind a single
        # worker when its peers could be appending other blocks.
        if config.budget() is not None:
            policy = _BudgetClaimPolicy(queue)
        else:
            policy = _ClaimPolicy(queue)
        mode = "claims"
        label = queue.owner
    runner = _ShardExecutionCache(cache, policy)
    tasks_before = TASK_COUNTER.count
    started = time.monotonic()
    try:
        config.run(runner)
    finally:
        runner.abandon_pending()
    accumulator = runner.cell_seconds
    # The runner saw every cell exactly once (run, served, or skipped), so
    # its counters already total the sweep — no extra enumeration pass.
    cells_total = len(runner.ran) + len(runner.served) + len(runner.skipped)
    report = ShardReport(
        figure=config.figure,
        digest=config.digest(),
        label=label,
        mode=mode,
        cells_total=cells_total,
        cells_run=len(runner.ran),
        cells_served=len(runner.served),
        cells_skipped=len(runner.skipped),
        tasks_run=TASK_COUNTER.count - tasks_before,
        seconds=time.monotonic() - started,
        cell_seconds={
            "count": accumulator.count,
            "mean": accumulator.mean,
            "m2": accumulator.m2,
        },
        created_at=time.time(),
    )
    _write_report(cache, report)
    return report


# ----------------------------------------------------------------------
# Status and merging
# ----------------------------------------------------------------------
@dataclass
class SweepStatus:
    """Progress of one sweep over a shared cache directory.

    ``done`` cells have entries in the cache; ``missing`` do not, of
    which ``claimed`` are currently claimed by a live worker and
    ``stale_claims`` by a crashed one (re-claimable).  ``reports`` are
    the per-shard run reports found on disk.
    """

    figure: str
    digest: str
    total: int
    done: int
    claimed: int
    stale_claims: int
    reports: list[ShardReport] = field(default_factory=list)

    @property
    def missing(self) -> int:
        """Cells not yet present in the shared cache."""
        return self.total - self.done

    @property
    def complete(self) -> bool:
        """Whether every cell is cached (i.e. ``merge`` will succeed)."""
        return self.missing == 0

    def summary(self) -> str:
        """One-line human rendering (the ``shard status`` output)."""
        line = (
            f"{self.figure}: {self.done}/{self.total} cells done, "
            f"{self.missing} missing ({self.claimed} claimed, "
            f"{self.stale_claims} stale claims)"
        )
        if self.reports:
            timing = merged_cell_seconds(self.reports)
            run = sum(r.cells_run for r in self.reports)
            line += f"; {len(self.reports)} shard reports, {run} cells simulated"
            if timing.count:
                line += f", {timing.mean:.2f}s/cell mean"
        return line


def sweep_status(
    config: SweepConfig, cache: CellCache, claim_ttl: float = DEFAULT_CLAIM_TTL
) -> SweepStatus:
    """Inspect how far ``config``'s sweep has progressed in ``cache``.

    Enumerates the sweep's cells (no simulation), checks which are
    present, classifies outstanding claims as live or stale under
    ``claim_ttl``, and attaches the persisted shard reports.
    """
    cells = enumerate_cells(config)
    queue = ClaimQueue(_shard_dir(cache) / "claims", ttl=claim_ttl)
    done = claimed = stale = 0
    for cell in cells:
        if cache.contains(cell.key):
            done += 1
            continue
        record = queue.peek(cell.key)
        if record is None:
            continue
        if queue.is_stale(record):
            stale += 1
        else:
            claimed += 1
    return SweepStatus(
        figure=config.figure,
        digest=config.digest(),
        total=len(cells),
        done=done,
        claimed=claimed,
        stale_claims=stale,
        reports=_read_reports(cache, config.digest()),
    )


def merge_sweep(
    config: SweepConfig, cache: CellCache, require_complete: bool = True
) -> list[dict[str, object]]:
    """Render ``config``'s final exhibit rows from the shared ``cache``.

    With every cell present this runs zero simulation trials: evaluation
    cells rebuild their cached :class:`RecoveryEvaluation` payloads
    (stats included, bit-identical to the original computation) and row
    cells return their stored dicts, so the merged table equals the
    unsharded run exactly.  When cells are missing,
    ``require_complete=True`` (the default) raises
    :class:`~repro.exceptions.ShardIncompleteError` naming the count;
    ``require_complete=False`` computes the stragglers locally instead —
    results are identical either way, merging strictly is about not
    silently absorbing another shard's workload.
    """
    cells = enumerate_cells(config)
    missing = [cell.key for cell in cells if not cache.contains(cell.key)]
    if missing and require_complete:
        raise ShardIncompleteError(
            f"cannot merge {config.figure}: {len(missing)} of {len(cells)} cells "
            f"missing from {cache.root} (first: {missing[0][:12]}…); run the "
            f"remaining shards or pass require_complete=False to compute them here"
        )
    return config.run(cache)
