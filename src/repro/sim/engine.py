"""Parallel, memory-bounded experiment engine.

The paper's exhibits average MSE/FG over independent trials per cell
across a grid of (dataset x protocol x attack x beta x eta).  This module
is the execution substrate for that grid:

* **Process-parallel trials** — :func:`parallel_map` fans picklable trial
  tasks out over a fork-safe :class:`~concurrent.futures.ProcessPoolExecutor`.
  Every trial owns a :class:`numpy.random.SeedSequence` child spawned from
  the cell's parent (see :func:`repro._rng.spawn_sequences`), so results
  are bit-identical whether the tasks run inline (``workers=1``) or across
  a pool, and trial streams never overlap.
* **Streaming metric accumulation** — :class:`Welford` keeps running
  mean/variance/count per metric instead of materializing per-trial metric
  lists, so cells can report confidence intervals at no extra memory cost.
* **Chunked trial simulation** — :func:`run_chunked_trial` perturbs and
  aggregates genuine users in bounded-memory chunks of ``support_counts``
  partial sums, so report-level OUE/SUE simulations of tens of millions of
  users fit in RAM (an ``(n, d)`` boolean report matrix never exists).

:func:`repro.sim.experiment.evaluate_recovery` is a thin shell over
:func:`trial_metrics` + :func:`parallel_map`; the figure functions and the
CLI expose the ``workers`` / ``chunk_users`` knobs end to end.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Protocol, Sequence, TypeVar

import numpy as np

from repro._rng import RngLike, as_generator
from repro.attacks.base import PoisoningAttack
from repro.core.detection import detect_and_aggregate
from repro.core.recover import recover_frequencies
from repro.datasets.base import Dataset
from repro.exceptions import InvalidParameterError
from repro.protocols.base import DEFAULT_CHUNK_USERS, FrequencyOracle
from repro.sim.metrics import frequency_gain, mse
from repro.sim.outliers import top_increase_items
from repro.sim.pipeline import SimulationMode, TrialResult, malicious_count, run_trial

T = TypeVar("T")
R = TypeVar("R")


# ----------------------------------------------------------------------
# Streaming statistics
# ----------------------------------------------------------------------
@dataclass
class Welford:
    """Streaming mean/variance accumulator (Welford's online algorithm).

    Replaces per-metric Python lists: one float triple per metric instead
    of one float per trial, and it merges (Chan et al.'s parallel update)
    so shards accumulated independently combine exactly.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def merge(self, other: "Welford") -> None:
        """Fold another accumulator in (parallel/sharded accumulation)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = other.count, other.mean, other.m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self.m2 += other.m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> Optional[float]:
        """Unbiased sample variance, ``None`` with fewer than two samples."""
        if self.count < 2:
            return None
        return self.m2 / (self.count - 1)

    @property
    def stderr(self) -> Optional[float]:
        """Standard error of the mean, ``None`` with fewer than two samples."""
        var = self.variance
        if var is None:
            return None
        return math.sqrt(var / self.count)

    def snapshot(self) -> "MetricStats":
        """Freeze the current statistics into an immutable record."""
        return MetricStats(
            mean=self.mean, variance=self.variance, stderr=self.stderr, count=self.count
        )


@dataclass(frozen=True)
class MetricStats:
    """Frozen summary of one metric across the trials of a cell."""

    mean: float
    variance: Optional[float]
    stderr: Optional[float]
    count: int

    @property
    def ci95_halfwidth(self) -> Optional[float]:
        """Half-width of the normal-approximation 95% confidence interval."""
        if self.stderr is None:
            return None
        return 1.96 * self.stderr


def aggregate_metrics(per_trial: Iterable[dict[str, float]]) -> dict[str, MetricStats]:
    """Fold the ``per_trial`` metric dicts into per-metric statistics.

    Trials are folded in iteration order, so the result is bit-identical
    regardless of how the dicts were computed (inline or across a pool, as
    long as the caller preserves task order — :func:`parallel_map` does).
    """
    accumulators: dict[str, Welford] = {}
    for metrics in per_trial:
        for key, value in metrics.items():
            accumulators.setdefault(key, Welford()).add(float(value))
    return {key: acc.snapshot() for key, acc in accumulators.items()}


# ----------------------------------------------------------------------
# Adaptive trial allocation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialBudget:
    """Variance-targeted trial allocation policy for one experimental cell.

    Instead of a fixed trial count, a budget runs trials in batches until
    every observed metric's 95% CI half-width is at or below
    ``target_halfwidth`` (checked only at the deterministic checkpoints
    ``min_trials, min_trials + batch, min_trials + 2*batch, ...`` capped at
    ``max_trials``), so the *final trial count is a pure function of the
    budget and the canonical per-trial seed stream* — never of how many
    trials happen to sit in a cache.  That makes an adaptive run
    bit-identical to a fixed-budget run at the same final trial count.

    ``target_halfwidth=None`` disables the convergence test: the cell runs
    straight to ``max_trials`` (still in appendable batches, so it can be
    topped up later).
    """

    target_halfwidth: Optional[float] = None
    min_trials: int = 2
    max_trials: int = 100
    batch: int = 5

    def __post_init__(self) -> None:
        if self.target_halfwidth is not None and not self.target_halfwidth > 0:
            raise InvalidParameterError(
                f"target_halfwidth must be > 0 or None, got {self.target_halfwidth}"
            )
        if self.min_trials < 1:
            raise InvalidParameterError(
                f"min_trials must be >= 1, got {self.min_trials}"
            )
        if self.max_trials < self.min_trials:
            raise InvalidParameterError(
                f"max_trials ({self.max_trials}) must be >= min_trials "
                f"({self.min_trials})"
            )
        if self.batch < 1:
            raise InvalidParameterError(f"batch must be >= 1, got {self.batch}")

    def checkpoints(self) -> list[int]:
        """The trial counts at which the stopping rule is evaluated.

        ``[min_trials, min_trials + batch, ...]`` capped at (and always
        ending with) ``max_trials``.  Convergence is *only* checked at
        these counts, which is what keeps the final trial count
        independent of pre-existing cache state.
        """
        out: list[int] = []
        count = self.min_trials
        while count < self.max_trials:
            out.append(count)
            count += self.batch
        out.append(self.max_trials)
        return out

    def met(self, stats: dict[str, MetricStats]) -> bool:
        """Whether ``stats`` satisfies the CI-half-width target.

        True when a ``target_halfwidth`` is set, at least one metric was
        observed, and every observed metric's 95% CI half-width is known
        (two or more observations) and at or below the target.
        """
        if self.target_halfwidth is None or not stats:
            return False
        for stat in stats.values():
            halfwidth = stat.ci95_halfwidth
            if halfwidth is None or halfwidth > self.target_halfwidth:
                return False
        return True

    def fingerprint(self) -> dict[str, Any]:
        """Canonical dict of every result-shaping field, for cache specs.

        All four fields shape the final trial count (``batch`` moves the
        checkpoints), so all four are part of a budgeted cell's identity.
        """
        return {
            "target_halfwidth": self.target_halfwidth,
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
            "batch": self.batch,
        }


class TrialBlockStore(Protocol):
    """Persistence hooks :func:`run_adaptive_trials` drives blocks through.

    Implemented by :class:`repro.sim.cache.CellBlockStore` (and its
    claim-coordinated shard wrapper); the engine only sees this structural
    interface, so it stays import-free of the cache layer.
    """

    def load(self) -> list[tuple[int, int, list[dict[str, float]]]]:
        """Validated, contiguous-from-zero ``(start, stop, per_trial)`` blocks."""
        ...  # pragma: no cover - protocol stub

    def peek(self, start: int, stop: int) -> Optional[list[dict[str, float]]]:
        """The per-trial metrics of block ``[start, stop)`` if present and valid."""
        ...  # pragma: no cover - protocol stub

    def append(self, start: int, stop: int, per_trial: list[dict[str, float]]) -> None:
        """Persist block ``[start, stop)``; a no-op unless it extends the chain."""
        ...  # pragma: no cover - protocol stub

    def claim(self, start: int, stop: int) -> bool:
        """Try to claim block ``[start, stop)`` for exactly-once execution."""
        ...  # pragma: no cover - protocol stub

    def release(self, start: int, stop: int) -> None:
        """Release a claim previously granted by :meth:`claim`."""
        ...  # pragma: no cover - protocol stub


@dataclass(frozen=True)
class AdaptiveOutcome:
    """What :func:`run_adaptive_trials` produced for one cell.

    ``per_trial`` holds the first ``trials`` trials' metric dicts in trial
    order — the ground truth ``stats`` is folded from, bit-identical to a
    fixed-budget run at ``trials`` total trials.  ``blocks_reused`` /
    ``blocks_run`` split the executed blocks into served-from-cache and
    freshly simulated.
    """

    per_trial: list[dict[str, float]]
    stats: dict[str, MetricStats]
    trials: int
    blocks_reused: int
    blocks_run: int

    @property
    def achieved_halfwidth(self) -> Optional[float]:
        """Largest 95% CI half-width across metrics (``None`` if unknown)."""
        widths = [s.ci95_halfwidth for s in self.stats.values()]
        known = [w for w in widths if w is not None]
        if not known or len(known) != len(widths):
            return None
        return max(known)

    def meta(self) -> dict[str, Any]:
        """Summary-entry metadata (block counts, achieved half-width)."""
        return {
            "trials": self.trials,
            "blocks": self.blocks_reused + self.blocks_run,
            "achieved_halfwidth": self.achieved_halfwidth,
        }


#: Seconds between re-checks while another worker holds a block claim.
BLOCK_CLAIM_POLL_SECONDS = 0.05


def run_adaptive_trials(
    budget: TrialBudget,
    metrics_fn: Callable[[Any], dict[str, float]],
    task_for: Callable[[np.random.SeedSequence], Any],
    seeds: Sequence[np.random.SeedSequence],
    workers: Optional[int] = 1,
    store: Optional[TrialBlockStore] = None,
) -> AdaptiveOutcome:
    """Run one cell's trials until ``budget``'s stopping rule is satisfied.

    At each checkpoint of ``budget`` the missing trial range is built by
    calling ``task_for`` on the canonical per-trial ``seeds`` (one
    :class:`~numpy.random.SeedSequence` child per trial index, at least
    ``budget.max_trials`` of them), executed with ``metrics_fn`` through
    :func:`parallel_map` (``workers`` as everywhere), and appended to
    ``store`` as a block.  Blocks already in ``store`` are reused instead
    of re-simulated; a block claimed by another worker is awaited rather
    than duplicated (exactly-once under shard claim coordination).  The
    stopping rule is evaluated over the *prefix* of trials at each
    checkpoint, so the final trial count — and therefore the returned
    statistics — is bit-identical to a fixed-budget run at that count,
    regardless of what the store already held.
    """
    if len(seeds) < budget.max_trials:
        raise InvalidParameterError(
            f"need at least max_trials={budget.max_trials} seeds, got {len(seeds)}"
        )
    per_trial: list[dict[str, float]] = []
    blocks_reused = 0
    blocks_run = 0
    if store is not None:
        for _start, _stop, chunk in store.load():
            per_trial.extend(chunk)
            blocks_reused += 1

    def run_block(start: int, stop: int) -> list[dict[str, float]]:
        tasks = [task_for(seeds[i]) for i in range(start, stop)]
        return parallel_map(metrics_fn, tasks, workers=workers)

    final = budget.max_trials
    stats: dict[str, MetricStats] = {}
    for checkpoint in budget.checkpoints():
        if checkpoint > len(per_trial):
            start, stop = len(per_trial), checkpoint
            if store is None:
                per_trial.extend(run_block(start, stop))
                blocks_run += 1
            else:
                chunk: Optional[list[dict[str, float]]] = None
                while True:
                    if store.claim(start, stop):
                        try:
                            chunk = store.peek(start, stop)
                            if chunk is None:
                                chunk = run_block(start, stop)
                                store.append(start, stop, chunk)
                                blocks_run += 1
                            else:
                                blocks_reused += 1
                        finally:
                            store.release(start, stop)
                        break
                    chunk = store.peek(start, stop)
                    if chunk is not None:
                        blocks_reused += 1
                        break
                    time.sleep(BLOCK_CLAIM_POLL_SECONDS)
                per_trial.extend(chunk)
        stats = aggregate_metrics(per_trial[:checkpoint])
        if checkpoint >= budget.max_trials or budget.met(stats):
            final = checkpoint
            break
    return AdaptiveOutcome(
        per_trial=per_trial[:final],
        stats=stats,
        trials=final,
        blocks_reused=blocks_reused,
        blocks_run=blocks_run,
    )


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
@dataclass
class CallCounter:
    """Monotone counter of simulation tasks executed by :func:`parallel_map`.

    The module-level :data:`TASK_COUNTER` instance lets tests and
    benchmarks assert *how much simulation actually ran* — e.g. that a
    warm :class:`repro.sim.cache.CellCache` serves a whole figure with
    zero executed trial tasks.  Counting happens in the parent process
    (tasks submitted, not per-worker), so it is pool-safe.
    """

    count: int = 0

    def add(self, n: int = 1) -> None:
        """Record ``n`` executed tasks."""
        self.count += int(n)

    def reset(self) -> None:
        """Zero the counter (start of a measured section)."""
        self.count = 0


#: Process-wide counter of tasks executed through :func:`parallel_map`.
TASK_COUNTER = CallCounter()


def _cgroup_cpu_quota(root: str = "/sys/fs/cgroup") -> Optional[int]:
    """CPU ceiling imposed by the cgroup CFS quota, or ``None`` if unlimited.

    Containers limited by quota (``docker run --cpus=2``, Kubernetes CPU
    limits) keep a full affinity mask, so the quota must be read
    separately.  Understands cgroup v2 (``cpu.max``: ``"<quota> <period>"``
    or ``"max ..."``) and v1 (``cpu/cpu.cfs_quota_us`` over
    ``cpu/cpu.cfs_period_us``, quota ``-1`` meaning unlimited) under
    ``root``; any read or parse problem means "no known quota".
    """
    def read(*parts: str) -> str:
        with open(os.path.join(root, *parts), encoding="ascii") as handle:
            return handle.read()

    try:
        quota_s, period_s = read("cpu.max").split()[:2]
        if quota_s == "max":
            return None
        quota, period = int(quota_s), int(period_s)
    except (OSError, ValueError, IndexError):
        try:
            quota = int(read("cpu", "cpu.cfs_quota_us"))
            period = int(read("cpu", "cpu.cfs_period_us"))
        except (OSError, ValueError):
            return None
        if quota < 0:
            return None
    if period <= 0:
        return None
    return max(1, math.ceil(quota / period))


def available_cpu_count() -> int:
    """Number of CPUs actually usable by *this* process (always >= 1).

    ``os.cpu_count()`` reports the machine's cores, which oversubscribes
    processes confined to fewer CPUs — CI containers, ``taskset``/cpuset
    restrictions, and shared shard hosts.  The affinity-aware count —
    ``os.process_cpu_count`` (Python 3.13+), else the size of the
    scheduling affinity mask (``os.sched_getaffinity``), else
    ``os.cpu_count`` — is additionally capped by the cgroup CFS quota
    (:func:`_cgroup_cpu_quota` — a ``--cpus=2`` container keeps a full
    affinity mask, so the mask alone is not enough).
    """
    process_count = getattr(os, "process_cpu_count", None)
    if process_count is not None:
        count = process_count() or 1
    else:
        count = 0
        affinity = getattr(os, "sched_getaffinity", None)
        if affinity is not None:
            try:
                count = len(affinity(0))
            except OSError:  # pragma: no cover - affinity unsupported at runtime
                count = 0
        if not count:
            count = os.cpu_count() or 1
    quota = _cgroup_cpu_quota()
    if quota is not None:
        count = min(count, quota)
    return max(1, count)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument: ``None``/``0`` means all cores.

    "All cores" is :func:`available_cpu_count` — the CPUs this process may
    actually run on — not the machine total, so affinity-restricted
    containers and shard hosts are never oversubscribed.
    """
    if workers is None or workers == 0:
        return available_cpu_count()
    if workers < 0:
        raise InvalidParameterError(f"workers must be >= 0 or None, got {workers}")
    return int(workers)


def _pool_context():
    """The multiprocessing context for worker pools (fork where available).

    ``fork`` keeps worker startup at milliseconds and inherits the parent's
    imports; platforms without it (Windows, macOS spawn default) fall back
    to the interpreter default, which only requires the tasks and the
    worker function to be picklable — both hold here.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def parallel_map(
    fn: Callable[[T], R], tasks: Sequence[T], workers: Optional[int] = 1
) -> list[R]:
    """Apply ``fn`` to every task, optionally across a process pool.

    ``workers=1`` (the default) runs inline — no pool, no pickling — and is
    the reference the pool path must match bit for bit.  Results always
    come back in task order.  ``fn`` and the tasks must be picklable when
    ``workers > 1`` (module-level functions and dataclasses of arrays are).
    Every call adds ``len(tasks)`` to :data:`TASK_COUNTER`, which is how
    tests measure that cached cells skip simulation entirely.
    """
    tasks = list(tasks)
    TASK_COUNTER.add(len(tasks))
    count = resolve_workers(workers)
    if count == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    max_workers = min(count, len(tasks))
    chunksize = max(1, len(tasks) // (max_workers * 4))
    with ProcessPoolExecutor(max_workers=max_workers, mp_context=_pool_context()) as pool:
        return list(pool.map(fn, tasks, chunksize=chunksize))


# ----------------------------------------------------------------------
# Chunked (bounded-memory) simulation
# ----------------------------------------------------------------------
def _validate_chunk(chunk_users: Optional[int]) -> int:
    chunk = DEFAULT_CHUNK_USERS if chunk_users is None else int(chunk_users)
    if chunk < 1:
        raise InvalidParameterError(f"chunk_users must be >= 1, got {chunk_users}")
    return chunk


def _bound_scan(protocol: FrequencyOracle, chunk_users: int) -> FrequencyOracle:
    """Cap a protocol's internal support-scan budget at the engine's chunk.

    Delegates to :meth:`repro.protocols.base.FrequencyOracle.scan_bounded`:
    protocols whose support counting walks a (reports x domain) grid (OLH's
    ``chunk_cells``) cap that budget at ``chunk_users * d`` cells so the
    scan's transient grid never exceeds the per-chunk memory the engine
    already budgets for; everything else passes through unchanged.  The
    cap is execution-only — it cannot change results.
    """
    return protocol.scan_bounded(chunk_users)


def chunked_support_counts(
    protocol: FrequencyOracle, reports: Any, chunk_users: Optional[int] = None
) -> np.ndarray:
    """Aggregate a report batch chunk by chunk into ``support_counts``.

    A one-shot fold through the protocol's explicit-state streaming kernel
    (:meth:`~repro.protocols.base.FrequencyOracle.fold_support_counts`):
    equals ``protocol.support_counts(reports)`` exactly (support counting
    is a sum over reports), including when the batch size is not divisible
    by ``chunk_users`` (default :data:`DEFAULT_CHUNK_USERS`); peak
    transient memory is one chunk's worth.
    """
    chunk = _validate_chunk(chunk_users)
    return protocol.fold_support_counts(
        protocol.init_support_state(), reports, chunk_users=chunk
    )


def chunked_genuine_counts(
    protocol: FrequencyOracle,
    true_counts: np.ndarray,
    rng: RngLike = None,
    chunk_users: Optional[int] = None,
) -> np.ndarray:
    """Exact report-level genuine aggregation in bounded memory.

    Splits the population histogram ``true_counts`` into chunk-sized
    sub-histograms by sampling without replacement off ``rng``
    (multivariate hypergeometric), perturbs each chunk's users with
    ``protocol`` and accumulates ``support_counts`` partial sums.  Because
    aggregation is permutation-invariant and the chunks partition the
    population uniformly at random, for per-user-seed protocols the
    result is distributed exactly as the unchunked
    ``support_counts(perturb(items))`` while the live report batch never
    exceeds ``chunk_users`` rows (default :data:`DEFAULT_CHUNK_USERS`).
    The exception is a cohort-mode oracle (``OLH(cohort=K)``): each chunk
    draws its own fresh cohort, so the chunk schedule shapes the report
    correlation structure (per-user marginals are unchanged, joint
    distribution is not) — which is why
    :func:`repro.sim.cache.resolved_cohort_chunk` puts the resolved chunk
    size into those cells' cache keys.  Protocols with an internal support-scan
    budget (OLH's ``chunk_cells``) have it capped at the chunk's cell
    count, so ``chunk_users`` bounds their transient grids too; for a
    cohort-mode OLH oracle every chunk draws a fresh cohort of shared
    seeds, which is what makes its grouped O(K*d + n) aggregation apply
    per chunk.
    """
    gen = as_generator(rng)
    chunk = _validate_chunk(chunk_users)
    protocol = _bound_scan(protocol, chunk)
    remaining = np.asarray(true_counts, dtype=np.int64).copy()
    d = remaining.size
    total = np.zeros(d, dtype=np.int64)
    left = int(remaining.sum())
    while left > 0:
        take = min(chunk, left)
        sub = gen.multivariate_hypergeometric(remaining, take).astype(np.int64)
        remaining -= sub
        left -= take
        items = np.repeat(np.arange(d, dtype=np.int64), sub)
        total += protocol.support_counts(protocol.perturb(items, gen))
    return total


def chunked_malicious_counts(
    protocol: FrequencyOracle,
    attack: PoisoningAttack,
    m: int,
    rng: RngLike = None,
    chunk_users: Optional[int] = None,
) -> np.ndarray:
    """Craft and aggregate ``m`` malicious reports in bounded chunks.

    ``attack`` crafts reports for ``protocol`` in batches of at most
    ``chunk_users`` (default :data:`DEFAULT_CHUNK_USERS`) drawing off
    ``rng``: malicious reports are normally i.i.d. draws from the
    attacker's report distribution (the adaptive-attack contract of
    Section V-C), so crafting in chunks is statistically identical to one
    crafted batch.  Attacks
    that declare ``iid_reports = False`` (e.g. :class:`MultiAttacker`'s
    deterministic weight split, which re-rounds shares per call and would
    starve low-weight attackers) are crafted in a **single batch** instead
    and only the support counting is chunked: the crafted reports
    materialize once, so the memory high-water mark for those attacks is
    the full ``m``-report batch itself (``m x d`` booleans for OUE, O(m)
    pairs for OLH/GRR) plus one chunk's scan — *not* bounded by
    ``chunk_users``.  ``m`` is a ``beta`` fraction of the population.
    """
    gen = as_generator(rng)
    chunk = _validate_chunk(chunk_users)
    protocol = _bound_scan(protocol, chunk)
    if not getattr(attack, "iid_reports", True):
        return chunked_support_counts(protocol, attack.craft(protocol, m, gen), chunk)
    total = np.zeros(protocol.domain_size, dtype=np.int64)
    for start in range(0, m, chunk):
        take = min(chunk, m - start)
        total += protocol.support_counts(attack.craft(protocol, take, gen))
    return total


def run_chunked_trial(
    dataset: Dataset,
    protocol: FrequencyOracle,
    attack: Optional[PoisoningAttack] = None,
    beta: float = 0.05,
    rng: RngLike = None,
    chunk_users: Optional[int] = None,
) -> TrialResult:
    """One poisoning round via the exact report-level path, chunked.

    Semantics of ``run_trial(mode="sampled")`` — every genuine user of
    ``dataset`` perturbs through ``protocol`` and ``attack`` (if any, at
    malicious fraction ``beta``) genuinely crafts, all drawing off ``rng``
    — but reports are aggregated chunk by chunk and never retained, so
    the memory high-water mark is ``O(chunk_users * d)`` instead of
    ``O(n * d)`` for the genuine phase and for i.i.d.-crafting attacks.
    Attacks with ``iid_reports = False`` (e.g. ``MultiAttacker``) craft
    their full ``m``-report batch up front (see
    :func:`chunked_malicious_counts`), so the malicious phase of those
    cells peaks at the crafted batch size — ``m x d`` booleans for OUE —
    before chunked aggregation resumes the bound.  Raw reports are
    consequently unavailable (``reports is None``), which rules out
    report-level defenses.
    """
    if dataset.domain_size != protocol.domain_size:
        raise InvalidParameterError(
            f"dataset domain size {dataset.domain_size} != protocol domain size "
            f"{protocol.domain_size}"
        )
    gen = as_generator(rng)
    n = dataset.num_users
    m = malicious_count(n, beta) if attack is not None else 0

    genuine_counts = chunked_genuine_counts(protocol, dataset.counts, gen, chunk_users)
    genuine_freq = protocol.estimate_frequencies(genuine_counts, n)

    if m > 0 and attack is not None:
        malicious_counts = chunked_malicious_counts(protocol, attack, m, gen, chunk_users)
        malicious_freq = protocol.estimate_frequencies(malicious_counts, m)
        poisoned_freq = protocol.estimate_frequencies(
            genuine_counts + malicious_counts, n + m
        )
    else:
        malicious_freq = None
        poisoned_freq = genuine_freq

    return TrialResult(
        true_frequencies=dataset.frequencies,
        genuine_frequencies=genuine_freq,
        poisoned_frequencies=poisoned_freq,
        malicious_frequencies=malicious_freq,
        n=n,
        m=m,
    )


# ----------------------------------------------------------------------
# Per-trial metric computation (the worker body)
# ----------------------------------------------------------------------
def resolve_star_targets(
    attack: PoisoningAttack, trial: TrialResult, aa_top_k: int
) -> Optional[np.ndarray]:
    """The attacker-selected items LDPRecover* assumes (Section VI-A4).

    For MGA (and any targeted ``attack``): the explicit target items.
    For AA: the top-``aa_top_k`` items of ``trial`` by frequency increase
    relative to the server's historical estimate (we use the genuine
    aggregate as the history stand-in).  Untargeted Manip: the same
    top-increase rule applies, since the server cannot distinguish attack
    types a priori.
    """
    explicit = attack.target_items
    if explicit is not None:
        return explicit
    if trial.genuine_frequencies is None:
        return None
    k = min(aa_top_k, trial.true_frequencies.size)
    return top_increase_items(trial.genuine_frequencies, trial.poisoned_frequencies, k)


@dataclass(frozen=True)
class TrialTask:
    """One picklable unit of work: a single trial of one experimental cell.

    Carries everything a worker process needs — the cell configuration and
    the trial's own :class:`~numpy.random.SeedSequence` child — so workers
    share no state and results are independent of placement.
    """

    dataset: Dataset
    protocol: FrequencyOracle
    attack: Optional[PoisoningAttack]
    seed: np.random.SeedSequence
    beta: float = 0.05
    eta: float = 0.2
    mode: SimulationMode = "fast"
    with_star: bool = True
    with_detection: bool = False
    aa_top_k: int = 5
    chunk_users: Optional[int] = field(default=None)


def trial_metrics(task: TrialTask) -> dict[str, float]:
    """Run one trial ``task`` and compute every recovery metric of the cell.

    This is the worker body of :func:`repro.sim.experiment.evaluate_recovery`:
    simulate the poisoning round, apply LDPRecover / LDPRecover* /
    Detection, and return a flat ``{metric: value}`` dict.  Metrics that do
    not apply (e.g. frequency gain of an untargeted attack) are simply
    absent, which the streaming accumulator treats as "no observation".
    """
    gen = np.random.default_rng(task.seed)
    dataset, protocol, attack = task.dataset, task.protocol, task.attack
    trial = run_trial(
        dataset, protocol, attack, beta=task.beta, mode=task.mode, rng=gen,
        chunk_users=task.chunk_users,
    )
    truth = trial.true_frequencies
    out: dict[str, float] = {"mse_before": mse(truth, trial.poisoned_frequencies)}

    recovery = recover_frequencies(trial.poisoned_frequencies, protocol, eta=task.eta)
    out["mse_recover"] = mse(truth, recovery.frequencies)
    if trial.malicious_frequencies is not None:
        out["mse_malicious_estimate"] = mse(
            trial.malicious_frequencies, recovery.malicious.frequencies
        )

    star_targets = None
    if attack is not None and task.with_star:
        star_targets = resolve_star_targets(attack, trial, task.aa_top_k)
    star = None
    if star_targets is not None and star_targets.size:
        star = recover_frequencies(
            trial.poisoned_frequencies, protocol, eta=task.eta, target_items=star_targets
        )
        out["mse_recover_star"] = mse(truth, star.frequencies)
        if trial.malicious_frequencies is not None:
            out["mse_malicious_estimate_star"] = mse(
                trial.malicious_frequencies, star.malicious.frequencies
            )

    detection_freq = None
    if task.with_detection and star_targets is not None and star_targets.size:
        detection = detect_and_aggregate(protocol, trial.reports, star_targets)
        detection_freq = detection.frequencies
        out["mse_detection"] = mse(truth, detection_freq)

    measured_targets = attack.target_items if attack is not None else None
    if measured_targets is not None and measured_targets.size:
        genuine = trial.genuine_frequencies
        out["fg_before"] = frequency_gain(
            genuine, trial.poisoned_frequencies, measured_targets
        )
        out["fg_recover"] = frequency_gain(genuine, recovery.frequencies, measured_targets)
        if star is not None:
            out["fg_recover_star"] = frequency_gain(
                genuine, star.frequencies, measured_targets
            )
        if detection_freq is not None:
            out["fg_detection"] = frequency_gain(genuine, detection_freq, measured_targets)
    return out


__all__ = [
    "AdaptiveOutcome",
    "BLOCK_CLAIM_POLL_SECONDS",
    "CallCounter",
    "DEFAULT_CHUNK_USERS",
    "MetricStats",
    "TASK_COUNTER",
    "TrialBlockStore",
    "TrialBudget",
    "TrialTask",
    "Welford",
    "aggregate_metrics",
    "available_cpu_count",
    "chunked_genuine_counts",
    "chunked_malicious_counts",
    "chunked_support_counts",
    "parallel_map",
    "resolve_star_targets",
    "resolve_workers",
    "run_adaptive_trials",
    "run_chunked_trial",
    "trial_metrics",
]
