"""Result export: row tables to CSV / JSON files.

The experiment harness and figure functions all speak "rows" — lists of
flat dicts.  This module persists them so CLI runs can feed plotting
scripts or regression dashboards without re-running the simulation.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Sequence

from repro.exceptions import InvalidParameterError

RowList = Sequence[dict[str, object]]


def _validate_rows(rows: RowList) -> list[dict[str, object]]:
    rows = list(rows)
    if not rows:
        raise InvalidParameterError("cannot export an empty row list")
    columns = list(rows[0].keys())
    for i, row in enumerate(rows):
        if list(row.keys()) != columns:
            raise InvalidParameterError(
                f"row {i} columns {list(row.keys())} differ from header {columns}"
            )
    return rows


def write_csv(rows: RowList, path: str | pathlib.Path) -> pathlib.Path:
    """Write rows as a CSV file with a header row.  Returns the path."""
    rows = _validate_rows(rows)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(rows: RowList, path: str | pathlib.Path) -> pathlib.Path:
    """Write rows as a JSON array of objects.  Returns the path."""
    rows = _validate_rows(rows)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(rows, handle, indent=2, default=float)
        handle.write("\n")
    return path


def read_rows(path: str | pathlib.Path) -> list[dict[str, object]]:
    """Load rows back from a CSV or JSON file at ``path`` (by extension).

    CSV values come back as strings with best-effort float conversion —
    good enough for plotting and regression comparison.
    """
    path = pathlib.Path(path)
    if path.suffix == ".json":
        with path.open() as handle:
            return json.load(handle)
    if path.suffix == ".csv":
        with path.open(newline="") as handle:
            rows = []
            for record in csv.DictReader(handle):
                parsed: dict[str, object] = {}
                for key, value in record.items():
                    try:
                        parsed[key] = float(value)
                    except (TypeError, ValueError):
                        parsed[key] = value
                rows.append(parsed)
            return rows
    raise InvalidParameterError(f"unsupported extension {path.suffix!r} (use .csv/.json)")
