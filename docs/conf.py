"""Sphinx configuration for the repro (LDPRecover, ICDE 2024) API docs.

Build with::

    python -m sphinx -b html docs docs/_build

CI builds with ``-W`` (warnings are errors); keep the autodoc surface
warning-clean.  Requirements: ``docs/requirements.txt``.
"""

from __future__ import annotations

import os
import sys

# Autodoc imports the package from the source tree (no install needed).
sys.path.insert(0, os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src")))

import repro  # noqa: E402  (path set up just above)

project = "repro — LDPRecover reproduction"
author = "repro contributors"
copyright = "2026, repro contributors"  # noqa: A001 - sphinx config name
version = repro.__version__
release = repro.__version__

extensions = [
    "sphinx.ext.autodoc",
    "sphinx.ext.autosummary",
    "sphinx.ext.napoleon",
    "sphinx.ext.viewcode",
    "myst_parser",
]

# Markdown (docs/exhibits.md) rides through MyST; reST stays the default.
source_suffix = {".rst": "restructuredtext", ".md": "markdown"}

exclude_patterns = ["_build"]

# Docstrings are numpydoc-flavoured prose; keep autodoc faithful to source
# order and include class docstrings once (on the class, not __init__).
autodoc_member_order = "bysource"
autoclass_content = "class"
autodoc_typehints = "signature"
napoleon_numpy_docstring = True
napoleon_google_docstring = False

# The default alabaster theme ships with Sphinx — no extra dependency.
html_theme = "alabaster"
html_theme_options = {
    "description": "Recovering frequencies from poisoning attacks against LDP",
    "fixed_sidebar": True,
}
