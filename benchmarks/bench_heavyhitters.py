"""Scenario exhibit: heavy-hitter promotion and repair (beyond the paper).

Qualitative shape: MGA's stated goal is planting its targets in the
popular list, and at the paper's epsilon it does — the poisoned top-k is
dominated by promoted tail items.  Target-aware recovery (LDPRecover*)
must evict a substantial share of them and lift top-k precision; the
non-knowledge variant is shown for contrast (its overshooting eta=0.2
distorts the untargeted mass, so it does not reliably repair the top-k —
knowledge is what buys eviction).
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, bench_workers, column, show
from repro.sim.scenarios import heavyhitter_rows


def test_heavyhitter_repair(run_once):
    rows = run_once(
        lambda: heavyhitter_rows(
            num_users=bench_users(120_000),
            trials=bench_trials(3),
            rng=12,
            workers=bench_workers(),
            cache=bench_cache(),
        )
    )
    show("Scenario: heavy-hitter promotion & repair (heavyhitter)", rows)
    promoted_poisoned = column(rows, "promoted_poisoned")
    promoted_star = column(rows, "promoted_recovered_star")
    assert promoted_poisoned.mean() > 2.0, "MGA should plant items into the top-k"
    assert promoted_star.mean() < promoted_poisoned.mean(), (
        "target-aware recovery must evict planted items on average"
    )
    precision_poisoned = column(rows, "precision_poisoned")
    precision_star = column(rows, "precision_recovered_star")
    assert precision_star.mean() > precision_poisoned.mean(), (
        "target-aware recovery must lift top-k precision on average"
    )
