"""Sustained ingest throughput of the online recovery service.

The ISSUE 9 acceptance exhibit: stream a paper-scale GRR workload
(n = 10^7 reports by default, ``REPRO_BENCH_USERS`` overrides) through
:class:`repro.serve.RecoveryService` in keep-alive-sized batches and
report the sustained reports/sec of the streaming fold, plus the same
workload pushed through the asyncio HTTP front end (wire codec + JSON
framing included) over one keep-alive connection.  Both paths must land
on frequencies byte-identical to the one-shot batch pipeline, and a warm
``/frequencies`` read after the stream must cost zero recomputations.
"""

from __future__ import annotations

import asyncio
import json
import time

import numpy as np

from conftest import bench_users, show
from repro.protocols import make_protocol
from repro.serve import RecoveryHTTPServer, RecoveryService

EPSILON = 1.0
DOMAIN = 128
BATCH = 100_000


def _grr_workload(n):
    """A seeded GRR report stream: n perturbed reports plus batch bounds."""
    protocol = make_protocol("grr", EPSILON, DOMAIN)
    items = np.random.default_rng(7).integers(0, DOMAIN, size=n)
    reports = protocol.perturb(items, np.random.default_rng(8))
    bounds = [(start, min(start + BATCH, n)) for start in range(0, n, BATCH)]
    return protocol, reports, bounds


def test_service_ingest_throughput(benchmark):
    """Core path: fold n~=10^7 GRR reports batch by batch into the service
    and report sustained reports/sec; the streamed view must be byte-equal
    to the batch aggregate and warm reads must not recompute."""
    n = bench_users(10_000_000) or 10_000_000
    protocol, reports, bounds = _grr_workload(n)
    timing: dict[str, float] = {}

    def run():
        service = RecoveryService(protocol)
        start = time.perf_counter()
        for lo, hi in bounds:
            service.ingest("live", protocol.slice_reports(reports, lo, hi))
        timing["seconds"] = time.perf_counter() - start
        return service

    service = benchmark.pedantic(run, rounds=1, iterations=1)
    view = service.frequencies("live")
    assert view.num_reports == n
    assert np.array_equal(view.frequencies, protocol.aggregate(reports))
    before = service.recomputes.count
    assert not service.frequencies("live").recomputed
    assert service.recomputes.count == before  # warm read: zero recomputation

    rate = n / timing["seconds"]
    benchmark.extra_info["reports_per_sec"] = rate
    benchmark.extra_info["num_reports"] = n
    benchmark.extra_info["batches"] = len(bounds)
    show(
        f"Service ingest throughput (GRR, n={n:,}, batch={BATCH:,})",
        [{"path": "service", "seconds": timing["seconds"], "reports_per_sec": rate}],
    )


async def _stream_over_http(protocol, reports, bounds):
    """Ingest every batch over one keep-alive connection; returns timing."""
    service = RecoveryService(protocol)
    server = RecoveryHTTPServer(service)
    await server.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    start = time.perf_counter()
    for lo, hi in bounds:
        batch = protocol.slice_reports(reports, lo, hi)
        body = json.dumps(
            {"epoch": "live", "reports": protocol.encode_reports(batch)}
        ).encode("utf-8")
        head = (
            f"POST /ingest HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        status_line = await reader.readline()
        assert status_line.split()[1] == b"200"
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            key, _, value = line.decode("latin-1").partition(":")
            if key.strip().lower() == "content-length":
                length = int(value)
        await reader.readexactly(length)
    seconds = time.perf_counter() - start
    writer.close()
    await writer.wait_closed()
    await server.stop()
    return service, seconds


def test_http_ingest_throughput(benchmark):
    """End-to-end path: the same workload at one tenth the scale pushed
    through the HTTP front end (base64 wire batches, JSON framing, one
    keep-alive socket); the streamed view must still be byte-equal."""
    n = bench_users(10_000_000) or 10_000_000
    n = max(n // 10, BATCH)
    protocol, reports, bounds = _grr_workload(n)

    def run():
        return asyncio.run(_stream_over_http(protocol, reports, bounds))

    service, seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    view = service.frequencies("live")
    assert view.num_reports == n
    assert np.array_equal(view.frequencies, protocol.aggregate(reports))

    rate = n / seconds
    benchmark.extra_info["reports_per_sec"] = rate
    benchmark.extra_info["num_reports"] = n
    show(
        f"HTTP ingest throughput (GRR, n={n:,}, batch={BATCH:,})",
        [{"path": "http", "seconds": seconds, "reports_per_sec": rate}],
    )
