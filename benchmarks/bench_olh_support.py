"""OLH support-scan benchmark: per-user-seed grid vs. seed-cohort batching.

Per-user-seed OLH aggregation hashes the full (users x domain) grid —
O(n*d) splitmix64 evaluations per chunk — which is the single most
expensive oracle operation behind the report-level exhibits (Figures 3-7,
Table I).  Seed-cohort mode (``OLH(cohort=K)`` / ``--olh-cohort K``)
draws each chunk's hash keys from K shared seeds, collapsing aggregation
to one domain hash per cohort seed plus per-seed histograms of the
reported values: O(K*d + n) per chunk.

This bench times ``chunked_genuine_counts`` both ways at the accepted
target scale (d=1024, n=1e6 by default; scale n down with
``REPRO_BENCH_USERS``) and asserts the >=5x speedup bar at full scale
(>=2.5x at reduced smoke scale), that both paths estimate the same truth,
that the grouped aggregation is bit-identical to the grid scan on the
same reports, and that a cohort-mode cell stays workers=N bit-identical
to workers=1.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_trials, bench_users, bench_workers, show
from repro.attacks import MGAAttack
from repro.datasets import ipums_like, zipf_dataset
from repro.protocols import OLH
from repro.sim.engine import chunked_genuine_counts
from repro.sim.experiment import evaluate_recovery

#: The acceptance scale: d=1024, n=1e6 (override n via REPRO_BENCH_USERS).
D = 1024
N_USERS = bench_users(1_000_000) or 1_000_000
COHORT = 256
CHUNK_USERS = 131_072


def test_olh_cohort_support_speedup(run_once):
    """Tentpole acceptance: cohort-mode genuine aggregation is >=5x faster
    than the per-user-seed grid scan at d=1024, n=1e6 (>=2.5x at reduced
    smoke scale), with both paths unbiased against the same truth."""
    dataset = zipf_dataset(domain_size=D, num_users=N_USERS, exponent=1.1, rng=0)
    per_user = OLH(epsilon=0.5, domain_size=D)
    cohort = per_user.with_cohort(COHORT)

    start = time.perf_counter()
    grid_counts = chunked_genuine_counts(
        per_user, dataset.counts, rng=1, chunk_users=CHUNK_USERS
    )
    grid_s = time.perf_counter() - start

    start = time.perf_counter()
    cohort_counts = run_once(
        lambda: chunked_genuine_counts(
            cohort, dataset.counts, rng=1, chunk_users=CHUNK_USERS
        )
    )
    cohort_s = time.perf_counter() - start

    n = dataset.num_users
    grid_mse = float(
        np.mean((per_user.estimate_frequencies(grid_counts, n) - dataset.frequencies) ** 2)
    )
    cohort_mse = float(
        np.mean((cohort.estimate_frequencies(cohort_counts, n) - dataset.frequencies) ** 2)
    )
    # Both unbiased estimates of the same truth: MSE ~ variance/n^2 bound.
    bound = 3.0 * per_user.theoretical_variance(n) / n**2
    assert grid_mse < bound and cohort_mse < bound

    speedup = grid_s / cohort_s if cohort_s else float("nan")
    full_scale = N_USERS * D >= 500_000_000
    floor = 5.0 if full_scale else 2.5
    show(
        f"OLH genuine aggregation (d={D}, n={n}, cohort K={COHORT})",
        [
            {"path": "per-user-seed grid", "seconds": grid_s, "speedup": 1.0},
            {"path": f"seed-cohort (K={COHORT})", "seconds": cohort_s, "speedup": speedup},
        ],
    )
    assert speedup >= floor, f"cohort speedup {speedup:.2f}x below the {floor}x bar"


def test_olh_cohort_grouped_equals_grid_scan():
    """The grouped O(K*d + n) kernel and the per-user grid scan count the
    exact same batch bit for bit (aggregation is deterministic)."""
    n = min(N_USERS, 200_000)
    per_user = OLH(epsilon=0.5, domain_size=D)
    cohort = per_user.with_cohort(COHORT)
    items = np.random.default_rng(2).integers(0, D, size=n)
    reports = cohort.perturb(items, np.random.default_rng(3))
    np.testing.assert_array_equal(
        cohort.support_counts(reports), per_user.support_counts(reports)
    )


def test_olh_cohort_workers_bit_identical():
    """A cohort-mode chunked cell is bit-identical across a worker pool —
    the engine's workers=N == workers=1 guarantee survives the fast path."""
    dataset = ipums_like(num_users=20_000)
    attack = MGAAttack(domain_size=dataset.domain_size, r=10, rng=0)
    trials = bench_trials(4)
    pool_workers = max(2, bench_workers(4))

    def cell(workers):
        return evaluate_recovery(
            dataset,
            OLH(epsilon=0.5, domain_size=dataset.domain_size),
            attack,
            beta=0.05,
            trials=trials,
            rng=7,
            chunk_users=5_000,
            olh_cohort=64,
            workers=workers,
        )

    serial = cell(1)
    pooled = cell(pool_workers)
    assert serial == pooled, "workers must not change cohort-mode results"
