"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's exhibits, prints the row
table (the same rows/series the paper reports) and asserts the qualitative
shape.  ``benchmark.pedantic(..., rounds=1)`` wraps the computation so
pytest-benchmark records wall time without re-running heavy exhibits.

Run with (bench files must be named explicitly — pytest's default
``test_*`` pattern skips ``bench_*`` during directory collection, which
keeps the tier-1 suite fast)::

    pytest benchmarks/bench_*.py --benchmark-only

Scale knobs: set ``REPRO_BENCH_USERS`` / ``REPRO_BENCH_TRIALS`` /
``REPRO_BENCH_WORKERS`` environment variables to override the default
(minutes-level, serial) configuration; unset ``REPRO_BENCH_USERS`` and
pass 0 to use the paper's full populations, ``REPRO_BENCH_WORKERS=0``
to fan trials out over every core.  Set ``REPRO_BENCH_CACHE_DIR`` to a
directory to run every exhibit benchmark (``bench_fig*.py`` /
``bench_table1*.py``) against a persistent cell cache (see
:mod:`repro.sim.cache`): a warm directory turns exhibit regeneration into
pure cache reads, which is also what ``bench_cell_cache.py`` measures.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sim.cache import CellCache
from repro.sim.experiment import format_table


def bench_users(default: int) -> int | None:
    """Population override from the environment (0 = paper scale)."""
    raw = os.environ.get("REPRO_BENCH_USERS")
    if raw is None:
        return default
    value = int(raw)
    return None if value == 0 else value


def bench_trials(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_TRIALS", default))


def bench_workers(default: int = 1) -> int:
    """Trial-level parallelism override (``REPRO_BENCH_WORKERS``, 0 = all cores)."""
    return int(os.environ.get("REPRO_BENCH_WORKERS", default))


def bench_cache() -> CellCache | None:
    """Cell cache from ``REPRO_BENCH_CACHE_DIR``, or ``None`` (no caching)."""
    raw = os.environ.get("REPRO_BENCH_CACHE_DIR")
    return CellCache(raw) if raw else None


#: Exhibit tables accumulated during the run; flushed after capture ends.
_EXHIBITS: list[str] = []


def show(title: str, rows: list[dict[str, object]]) -> None:
    """Record one exhibit's table under a banner.

    pytest's fd-level capture swallows per-test prints, so the tables are
    accumulated here and emitted by :func:`pytest_terminal_summary` once
    capture is over — the bench harness's whole point is showing the
    regenerated rows.
    """
    text = f"\n=== {title} ===\n{format_table(rows)}"
    print(text)  # visible immediately under -s
    _EXHIBITS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Emit every regenerated exhibit table after the test summary."""
    if not _EXHIBITS or config.option.capture == "no":
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("========== regenerated paper exhibits ==========")
    for text in _EXHIBITS:
        terminalreporter.write_line(text)


def column(rows: list[dict[str, object]], key: str) -> np.ndarray:
    return np.array([row[key] for row in rows], dtype=np.float64)


@pytest.fixture()
def run_once(benchmark):
    """Run a zero-arg callable exactly once under pytest-benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return runner
