"""Figure 3: MSE of LDPRecover and LDPRecover* across datasets, protocols
and attacks (before recovery / Detection / LDPRecover / LDPRecover*).

Paper shape: recovered MSE well below poisoned MSE in every cell; both
LDPRecover variants beat Detection; LDPRecover* is the best under MGA.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_cache, bench_trials, bench_users, bench_workers, column, show
from repro.sim.figures import figure3_rows


@pytest.mark.parametrize("dataset", ["ipums", "fire"])
def test_fig3(dataset, run_once):
    rows = run_once(
        lambda: figure3_rows(
            dataset_name=dataset,
            num_users=bench_users(40_000),
            trials=bench_trials(5),
            rng=3,
            cache=bench_cache(),
            workers=bench_workers(1),
        )
    )
    show(f"Figure 3 ({dataset}): MSE before/after recovery", rows)
    before = column(rows, "mse_before")
    recover = column(rows, "mse_ldprecover")
    star = column(rows, "mse_ldprecover_star")
    detection = column(rows, "mse_detection")
    assert np.all(recover < before), "LDPRecover must beat the poisoned vector"
    assert np.all(recover < detection), "LDPRecover must beat Detection"
    mga_mask = np.array([row["cell"].startswith("mga") for row in rows])
    assert star[mga_mask].mean() < recover[mga_mask].mean(), (
        "LDPRecover* should win under MGA"
    )
