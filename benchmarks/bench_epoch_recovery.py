"""Scenario exhibits: evolving-population epochs + defense shoot-out.

Qualitative shape, epochs: the population drifts every epoch while the
scheduled MGA follows its shape (always-on / mid-stream burst / ramp).
Recovery strictly improves the attacked epochs' MSE, the burst schedule's
target frequency gain jumps exactly when the schedule switches on, and
the cross-epoch z-score detector — fitted on each trial's *prior* raw
views — catches the burst epoch far better under a clean history than the
constant schedule's contaminated one.  The fan-in cells (``-c3``) run the
same burst through three round-robin collectors merged into the service.

Qualitative shape, defenses: on each (attack, epsilon, beta) regime every
competing defense repairs the same poisoned rounds; the ``winner`` column
is the lowest-MSE method and must actually improve on the undefended
estimate, with LDPRecover* taking at least one regime.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, bench_workers, show
from repro.sim.scenarios import (
    DEFENSE_METHODS,
    EPOCH_COUNT,
    EPOCH_SCHEDULES,
    defenses_rows,
    epochs_rows,
)

BURST_AT = EPOCH_SCHEDULES[1].start_epoch


def test_epoch_recovery(run_once):
    rows = run_once(
        lambda: epochs_rows(
            num_users=bench_users(20_000),
            trials=bench_trials(3),
            rng=13,
            workers=bench_workers(),
            cache=bench_cache(),
        )
    )
    show("Scenario: evolving-population epochs", rows)
    assert len(rows) == (3 * len(EPOCH_SCHEDULES) + 3) * EPOCH_COUNT
    cells = {r["cell"] for r in rows}
    assert {"burst-grr-c3", "burst-oue-c3", "burst-olh-c3"} <= cells

    # Recovery strictly improves every solidly attacked epoch's MSE.
    attacked = [r for r in rows if r["beta"] >= 0.05]
    assert attacked
    for row in attacked:
        assert row["mse_recover"] < row["mse_before"], row["cell"]
        assert row["mse_star"] < row["mse_before"], row["cell"]
        assert row["fg_star"] < row["fg_before"], row["cell"]

    # The burst's frequency gain switches on exactly at the burst epoch.
    burst = [r for r in rows if r["cell"].startswith("burst") and r["cell"].endswith("c1")]
    clean_fg = np.array([r["fg_before"] for r in burst if r["epoch"] < BURST_AT])
    hot_fg = np.array([r["fg_before"] for r in burst if r["epoch"] >= BURST_AT])
    assert hot_fg.min() > clean_fg.max(), "the burst must dominate the clean epochs"

    # Detection: the clean pre-burst history beats the constant schedule's
    # contaminated one at the moment the burst lands.
    burst_f1 = np.mean([
        r["detection_f1"]
        for r in rows
        if r["cell"].startswith("burst") and r["cell"].endswith("c1")
        and r["epoch"] == BURST_AT
    ])
    constant_f1 = np.mean([
        r["detection_f1"]
        for r in rows
        if r["cell"].startswith("constant") and r["epoch"] == BURST_AT
    ])
    assert burst_f1 > constant_f1, (
        f"clean-history detection ({burst_f1:.2f}) must beat the "
        f"poisoned-history baseline ({constant_f1:.2f})"
    )
    assert burst_f1 >= 0.5


def test_defense_shootout(run_once):
    rows = run_once(
        lambda: defenses_rows(
            num_users=bench_users(40_000),
            trials=bench_trials(3),
            rng=14,
            workers=bench_workers(),
            cache=bench_cache(),
        )
    )
    show("Scenario: defense shoot-out (winner per regime)", rows)
    assert len(rows) == 8
    for row in rows:
        assert row["winner"] in DEFENSE_METHODS
        # Winning means actually improving on the undefended estimate...
        assert row[f"mse_{row['winner']}"] < row["mse_before"], row
        # ...with a ±95% CI column beside every reported mean.
        for method in ("before",) + DEFENSE_METHODS:
            assert f"mse_{method}±" in row and f"fg_{method}±" in row
    assert any(r["winner"] == "recover_star" for r in rows), (
        "LDPRecover* must take at least one regime"
    )
    # A stronger adversary inflates its targets more, in every regime; the
    # undefended MSE ordering additionally holds for the loud MGA (the
    # adaptive attack's error is small enough to sit in sampling noise).
    for attack in ("mga", "aa"):
        for epsilon in (0.5, 2.0):
            series = sorted(
                (r for r in rows if r["attack"] == attack and r["epsilon"] == epsilon),
                key=lambda r: r["beta"],
            )
            assert series[-1]["fg_before"] > series[0]["fg_before"]
            if attack == "mga":
                assert series[-1]["mse_before"] > series[0]["mse_before"]
