"""Shard scaling: cells/sec of one sweep as the shard count grows.

Simulates an N-machine cluster on one host by running the N shards of a
Figure 8 sweep sequentially against a shared cache directory, then
merging.  Two numbers matter:

* the *cluster wall clock* a real deployment would see — the slowest
  shard, since shards run concurrently on separate machines — which
  should shrink roughly linearly in the shard count;
* correctness — every shard count must merge to rows bit-identical to
  the single-shard reference, with each cell simulated exactly once
  (pinned via the shard reports and the engine task counter).

Scale knobs: ``REPRO_BENCH_USERS`` / ``REPRO_BENCH_TRIALS`` /
``REPRO_BENCH_WORKERS`` as everywhere in this suite.
"""

from __future__ import annotations

import time

from conftest import bench_trials, bench_users, bench_workers, show
from repro.sim.cache import CellCache
from repro.sim.engine import TASK_COUNTER
from repro.sim.shard import SweepConfig, enumerate_cells, merge_sweep, run_shard

SHARD_COUNTS = (1, 2, 4)


def test_shard_scaling(run_once, tmp_path):
    config = SweepConfig(
        figure="fig8",
        num_users=bench_users(40_000),
        trials=bench_trials(4),
        seed=8,
        workers=bench_workers(1),
    )
    cells = len(enumerate_cells(config))

    def sweep_all_shard_counts():
        results = []
        for shard_count in SHARD_COUNTS:
            cache = CellCache(tmp_path / f"cache-{shard_count}")
            TASK_COUNTER.reset()
            started = time.perf_counter()
            reports = [
                run_shard(config, cache, shard_index=i, shard_count=shard_count)
                for i in range(shard_count)
            ]
            sequential = time.perf_counter() - started
            tasks = TASK_COUNTER.count
            TASK_COUNTER.reset()
            merged = merge_sweep(config, cache)
            assert TASK_COUNTER.count == 0, "merge must not simulate"
            results.append(
                {
                    "shards": shard_count,
                    "cells": cells,
                    "cells_run": sum(r.cells_run for r in reports),
                    "tasks": tasks,
                    "sequential_s": sequential,
                    "cluster_wall_s": max(r.seconds for r in reports),
                    "cells_per_s": cells / max(r.seconds for r in reports),
                    "rows": merged,
                }
            )
        return results

    results = run_once(sweep_all_shard_counts)

    reference = results[0]["rows"]
    for result in results:
        assert result["rows"] == reference, (
            f"shards={result['shards']} must merge bit-identically to shards=1"
        )
        assert result["cells_run"] == cells, "each cell simulated exactly once"
        assert result["tasks"] == cells * config.trials

    table = [{k: v for k, v in r.items() if k != "rows"} for r in results]
    show("Shard scaling (Figure 8 sweep; cluster wall = slowest shard)", table)

    # The cluster wall clock must actually benefit from sharding: with 4
    # shards of ~4 cells each out of 15, the slowest shard does well under
    # the whole sweep's work (loose 0.7 bar absorbs partition imbalance).
    one = results[0]["cluster_wall_s"]
    four = [r for r in results if r["shards"] == 4][0]["cluster_wall_s"]
    assert four < 0.7 * one, (
        f"4-way sharding must beat 1-way: {four:.2f}s vs {one:.2f}s"
    )
