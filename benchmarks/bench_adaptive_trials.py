"""Adaptive trial allocation: trials saved vs a fixed budget (Figure 8).

Runs the Figure 8 sweep twice — once with every cell at a fixed trial
count, once under a variance-targeted :class:`~repro.sim.engine.TrialBudget`
derived from the fixed run's own achieved precision — and reports how
many simulation tasks the stopping rule saved.  Quiet cells converge at
an early checkpoint; only noisy cells spend the full cap, so the adaptive
sweep must never cost more than the fixed one and (at the generous
target used here) must cost strictly less.

A warm rerun against the same cache directory then proves the appendable
block store: zero tasks, rows identical to the first adaptive pass.

Scale knobs: ``REPRO_BENCH_USERS`` / ``REPRO_BENCH_TRIALS`` (the fixed
cap) / ``REPRO_BENCH_WORKERS`` as everywhere in this suite.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_trials, bench_users, bench_workers, show
from repro.sim import figures
from repro.sim.cache import CellCache
from repro.sim.engine import TASK_COUNTER, TrialBudget


def test_adaptive_budget_saves_trials(run_once, benchmark, tmp_path):
    num_users = bench_users(20_000)
    max_trials = bench_trials(8)
    workers = bench_workers(1)

    def generate():
        # The fixed reference: every cell runs exactly max_trials.
        TASK_COUNTER.reset()
        fixed = figures.figure8_rows(
            num_users=num_users, trials=max_trials, rng=8, workers=workers
        )
        tasks_fixed = TASK_COUNTER.count
        # Target from the fixed run's own precision: three times the
        # worst cell's achieved CI half-width.  Half-widths shrink like
        # 1/sqrt(n), so every cell reaches the target well before the cap
        # — the saving is structural, not luck.
        widths = [
            max(float(row["mse_mga±"]), float(row["mse_mga_ipa±"])) for row in fixed
        ]
        target = 3.0 * max(widths)
        budget = TrialBudget(
            target_halfwidth=target, min_trials=2, max_trials=max_trials, batch=2
        )
        cache = CellCache(tmp_path / "adaptive-cache")
        TASK_COUNTER.reset()
        adaptive = figures.figure8_rows(
            num_users=num_users, rng=8, workers=workers, cache=cache, budget=budget
        )
        tasks_adaptive = TASK_COUNTER.count
        trials_per_cell = [entry.meta["trials"] for entry in cache.entries()]
        # Warm rerun: the summary entries (and behind them the appendable
        # trial blocks) serve the whole sweep without a single task.
        TASK_COUNTER.reset()
        warm = figures.figure8_rows(
            num_users=num_users, rng=8, workers=workers, cache=cache, budget=budget
        )
        return {
            "cells": len(fixed),
            "tasks_fixed": tasks_fixed,
            "tasks_adaptive": tasks_adaptive,
            "tasks_warm": TASK_COUNTER.count,
            "target_ci": target,
            "mean_trials": float(np.mean(trials_per_cell)),
            "adaptive_rows": adaptive,
            "warm_rows": warm,
        }

    result = run_once(generate)

    assert result["tasks_fixed"] == result["cells"] * max_trials
    assert result["tasks_adaptive"] < result["tasks_fixed"], (
        f"adaptive spend {result['tasks_adaptive']} must beat the fixed "
        f"{result['tasks_fixed']} at a 3x-worst-cell target"
    )
    assert result["tasks_warm"] == 0, "warm rerun must be pure cache reads"
    assert result["warm_rows"] == result["adaptive_rows"], (
        "rows served from trial blocks must equal the freshly simulated rows"
    )

    saved = result["tasks_fixed"] - result["tasks_adaptive"]
    table = [
        {
            "cells": result["cells"],
            "fixed_cap": max_trials,
            "mean_trials": result["mean_trials"],
            "tasks_fixed": result["tasks_fixed"],
            "tasks_adaptive": result["tasks_adaptive"],
            "trials_saved": saved,
            "saved_pct": 100.0 * saved / result["tasks_fixed"],
        }
    ]
    show("Adaptive trial allocation (Figure 8; target = 3x worst cell CI)", table)
    benchmark.extra_info["tasks_fixed"] = result["tasks_fixed"]
    benchmark.extra_info["tasks_adaptive"] = result["tasks_adaptive"]
    benchmark.extra_info["trials_saved"] = saved
    benchmark.extra_info["target_ci"] = result["target_ci"]
