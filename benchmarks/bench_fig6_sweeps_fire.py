"""Figure 6: impact of beta / epsilon / eta on recovery from AA (Fire).

Same sweeps as Figure 5 on the larger, flatter Fire workload.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import sweep_rows


@pytest.mark.parametrize("parameter", ["beta", "epsilon", "eta"])
def test_fig6(parameter, run_once):
    rows = run_once(
        lambda: sweep_rows(
            "fire",
            parameter,
            num_users=bench_users(60_000),
            trials=bench_trials(5),
            rng=6,
            cache=bench_cache(),
        )
    )
    show(f"Figure 6 (Fire): AA sweep over {parameter}", rows)
    before = column(rows, "mse_before")
    recover = column(rows, "mse_ldprecover")
    if parameter == "epsilon":
        # See bench_fig5: at large epsilon recovery on a near-clean vector
        # is a wash, matching the paper's Table I inversion.
        assert np.mean(recover < before) >= 0.8
        assert np.all(recover < 2 * before)
    else:
        assert np.all(recover < before), "recovery must beat poisoned at every point"
