"""Figure 7: MSE between estimated and true malicious frequencies (IPUMS,
MGA, beta in [0.05, 0.25]).

Paper shape: LDPRecover* (which knows the target items) estimates the
malicious frequencies more accurately than LDPRecover's uniform split at
every beta — the mechanism behind its lower recovery MSE.
"""

from __future__ import annotations

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import figure7_rows


def test_fig7(run_once):
    rows = run_once(
        lambda: figure7_rows(
            num_users=bench_users(60_000),
            trials=bench_trials(5),
            rng=7,
            cache=bench_cache(),
        )
    )
    show("Figure 7 (IPUMS): malicious-frequency estimation MSE", rows)
    plain = column(rows, "malicious_mse_ldprecover")
    star = column(rows, "malicious_mse_ldprecover_star")
    assert star.mean() < plain.mean(), "partial knowledge must estimate f_Y better"
    # Per-protocol averages preserve the ordering too.
    for protocol in ("grr", "oue", "olh"):
        sub = [r for r in rows if r["cell"] == f"mga-{protocol}"]
        assert column(sub, "malicious_mse_ldprecover_star").mean() < column(
            sub, "malicious_mse_ldprecover"
        ).mean()
