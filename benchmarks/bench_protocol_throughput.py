"""Microbenchmarks: protocol kernel throughput and the experiment engine.

Not a paper exhibit, but the substrate the whole evaluation stands on:
perturbation, support counting and the fast distributional path for each
protocol, plus the recovery itself and the parallel/chunked experiment
engine.  Kernels use pytest-benchmark's normal repeated timing; the engine
smoke tests time one fig3-sized cell serially vs. across a worker pool and
report the wall-clock speedup in the exhibit summary.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import bench_trials, bench_users, bench_workers, show
from repro.attacks import MGAAttack
from repro.core.recover import recover_frequencies
from repro.datasets import ipums_like
from repro.protocols import make_protocol
from repro.sim.engine import run_chunked_trial
from repro.sim.experiment import evaluate_recovery

N_USERS = 20_000
DATASET = ipums_like(num_users=N_USERS)
D = DATASET.domain_size


@pytest.fixture(params=["grr", "oue", "olh"])
def protocol(request):
    return make_protocol(request.param, epsilon=0.5, domain_size=D)


def test_perturb_throughput(benchmark, protocol):
    items = np.random.default_rng(0).integers(0, D, size=N_USERS)
    benchmark(lambda: protocol.perturb(items, 1))


def test_support_counts_throughput(benchmark, protocol):
    items = np.random.default_rng(0).integers(0, D, size=N_USERS)
    reports = protocol.perturb(items, 1)
    benchmark(lambda: protocol.support_counts(reports))


def test_fast_path_throughput(benchmark, protocol):
    counts = DATASET.counts
    benchmark(lambda: protocol.sample_genuine_counts(counts, 1))


def test_recovery_throughput(benchmark, protocol):
    rng = np.random.default_rng(2)
    poisoned = rng.normal(1.0 / D, 0.05, size=D)
    benchmark(lambda: recover_frequencies(poisoned, protocol))


def test_fast_path_at_paper_scale(benchmark):
    """The headline cost claim: a full-population IPUMS trial in the fast
    path is milliseconds, which is what makes the paper-scale sweeps
    tractable."""
    full = ipums_like()  # 389,894 users
    proto = make_protocol("oue", epsilon=0.5, domain_size=full.domain_size)
    benchmark(lambda: proto.sample_genuine_counts(full.counts, 1))


def test_engine_parallel_speedup(benchmark):
    """Smoke the parallel engine on one fig3-sized cell: time workers=1 vs
    a 4-way pool (override with REPRO_BENCH_WORKERS), assert the results
    are bit-identical, and report the wall-clock speedup."""
    dataset = ipums_like(num_users=bench_users(40_000))
    proto = make_protocol("oue", epsilon=0.5, domain_size=dataset.domain_size)
    attack = MGAAttack(domain_size=dataset.domain_size, r=10, rng=0)
    trials = bench_trials(8)
    pool_workers = bench_workers(4)

    def cell(workers):
        return evaluate_recovery(
            dataset, proto, attack, beta=0.05, trials=trials, mode="sampled",
            rng=3, workers=workers,
        )

    start = time.perf_counter()
    serial = cell(1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    pooled = benchmark.pedantic(lambda: cell(pool_workers), rounds=1, iterations=1)
    pooled_s = time.perf_counter() - start

    assert serial.mse_before == pooled.mse_before
    assert serial.mse_recover == pooled.mse_recover
    assert serial.mse_recover_star == pooled.mse_recover_star
    assert serial.fg_before == pooled.fg_before
    speedup = serial_s / pooled_s if pooled_s else float("nan")
    show(
        f"Engine parallel smoke (fig3-sized cell, {trials} trials)",
        [
            {"workers": 1, "seconds": serial_s, "speedup": 1.0},
            {"workers": pool_workers, "seconds": pooled_s, "speedup": speedup},
        ],
    )


def test_engine_chunked_memory_bound(benchmark):
    """The chunked exact path at paper scale: a full-population OUE trial
    whose live report matrix never exceeds chunk_users x d booleans (the
    unchunked matrix would be n x d)."""
    full = ipums_like(num_users=bench_users(0) or None)  # default: paper scale
    proto = make_protocol("oue", epsilon=0.5, domain_size=full.domain_size)
    attack = MGAAttack(domain_size=full.domain_size, r=10, rng=0)
    trial = benchmark.pedantic(
        lambda: run_chunked_trial(full, proto, attack, beta=0.05, rng=1, chunk_users=65_536),
        rounds=1,
        iterations=1,
    )
    assert trial.m > 0
    genuine_mse = float(np.mean((trial.true_frequencies - trial.genuine_frequencies) ** 2))
    # An unbiased estimator's MSE is its variance; allow 3x the theory value.
    expected = proto.theoretical_variance(trial.n) / trial.n**2
    assert genuine_mse < 3.0 * expected
