"""Microbenchmarks: protocol kernel throughput.

Not a paper exhibit, but the substrate the whole evaluation stands on:
perturbation, support counting and the fast distributional path for each
protocol, plus the recovery itself.  These use pytest-benchmark's normal
repeated timing (the kernels are cheap and stable).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recover import recover_frequencies
from repro.datasets import ipums_like
from repro.protocols import make_protocol

N_USERS = 20_000
DATASET = ipums_like(num_users=N_USERS)
D = DATASET.domain_size


@pytest.fixture(params=["grr", "oue", "olh"])
def protocol(request):
    return make_protocol(request.param, epsilon=0.5, domain_size=D)


def test_perturb_throughput(benchmark, protocol):
    items = np.random.default_rng(0).integers(0, D, size=N_USERS)
    benchmark(lambda: protocol.perturb(items, 1))


def test_support_counts_throughput(benchmark, protocol):
    items = np.random.default_rng(0).integers(0, D, size=N_USERS)
    reports = protocol.perturb(items, 1)
    benchmark(lambda: protocol.support_counts(reports))


def test_fast_path_throughput(benchmark, protocol):
    counts = DATASET.counts
    benchmark(lambda: protocol.sample_genuine_counts(counts, 1))


def test_recovery_throughput(benchmark, protocol):
    rng = np.random.default_rng(2)
    poisoned = rng.normal(1.0 / D, 0.05, size=D)
    benchmark(lambda: recover_frequencies(poisoned, protocol))


def test_fast_path_at_paper_scale(benchmark):
    """The headline cost claim: a full-population IPUMS trial in the fast
    path is milliseconds, which is what makes the paper-scale sweeps
    tractable."""
    full = ipums_like()  # 389,894 users
    proto = make_protocol("oue", epsilon=0.5, domain_size=full.domain_size)
    benchmark(lambda: proto.sample_genuine_counts(full.counts, 1))
