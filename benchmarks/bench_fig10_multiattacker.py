"""Figure 10: LDPRecover against five independent adaptive attackers
(IPUMS, beta in [0.05, 0.25]).

Paper shape: multi-attacker poisoning reduces to single-attacker adaptive
poisoning (mixture of distributions), so LDPRecover keeps working — the
paper reports an average 80.2% MSE improvement for GRR.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import figure10_rows


def test_fig10(run_once):
    rows = run_once(
        lambda: figure10_rows(
            num_users=bench_users(60_000),
            trials=bench_trials(5),
            rng=10,
            cache=bench_cache(),
        )
    )
    show("Figure 10 (IPUMS): multi-attacker AA", rows)
    before = column(rows, "mse_before")
    recover = column(rows, "mse_ldprecover")
    assert np.all(recover < before), "recovery must beat poisoned at every beta"
    grr = [r for r in rows if r["cell"] == "mul-aa-grr"]
    improvement = 1 - column(grr, "mse_ldprecover").mean() / column(grr, "mse_before").mean()
    assert improvement > 0.5, "GRR improvement should be large (paper: 80.2%)"
