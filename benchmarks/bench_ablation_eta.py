"""Ablation: sensitivity of recovery to the server's eta guess.

Isolates the Figures 5-6 eta sweep on GRR with a *fixed* attack so the
only moving part is eta.  Expected shape (Section VI-D): the best MSE is
near the matched eta = beta/(1-beta); moderate over-estimates (the paper's
default 0.2) lose little; extreme over-estimates degrade gracefully but
still beat no recovery.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_trials, bench_users, show
from repro._rng import spawn
from repro.analysis import matched_eta
from repro.attacks import AdaptiveAttack
from repro.core.recover import recover_frequencies
from repro.datasets import ipums_like
from repro.protocols import GRR
from repro.sim import mse, run_trial

BETA = 0.05
ETAS = (0.01, matched_eta(BETA), 0.1, 0.2, 0.4, 0.8)


def compute_rows(num_users, trials, rng=12):
    dataset = ipums_like(num_users=num_users)
    protocol = GRR(epsilon=0.5, domain_size=dataset.domain_size)
    attack = AdaptiveAttack(domain_size=dataset.domain_size, rng=0)
    trials_data = [
        run_trial(dataset, protocol, attack, beta=BETA, rng=child)
        for child in spawn(rng, trials)
    ]
    rows = []
    before = float(
        np.mean([mse(t.true_frequencies, t.poisoned_frequencies) for t in trials_data])
    )
    for eta in ETAS:
        errs = [
            mse(
                t.true_frequencies,
                recover_frequencies(t.poisoned_frequencies, protocol, eta=eta).frequencies,
            )
            for t in trials_data
        ]
        rows.append(
            {
                "eta": float(eta),
                "matched": abs(eta - matched_eta(BETA)) < 1e-9,
                "mse_before": before,
                "mse_recover": float(np.mean(errs)),
            }
        )
    return rows


def test_ablation_eta(run_once):
    rows = run_once(lambda: compute_rows(bench_users(60_000), bench_trials(5)))
    show("Ablation: eta sensitivity (AA-GRR, IPUMS, beta=0.05)", rows)
    errors = {row["eta"]: row["mse_recover"] for row in rows}
    before = rows[0]["mse_before"]
    # Every eta beats no recovery (the paper's robustness claim).
    assert all(err < before for err in errors.values())
    # The matched eta is within 2x of the best over the grid.
    best = min(errors.values())
    assert errors[matched_eta(BETA)] <= 2 * best
