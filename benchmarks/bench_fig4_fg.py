"""Figure 4: frequency gain (FG) of MGA before/after recovery.

Paper shape: FG before recovery is large and positive; LDPRecover cuts it
sharply (near zero); LDPRecover* can push it negative; Detection
over-corrects because it removes genuine users holding target items.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import figure4_rows


@pytest.mark.parametrize("dataset", ["ipums", "fire"])
def test_fig4(dataset, run_once):
    rows = run_once(
        lambda: figure4_rows(
            dataset_name=dataset,
            num_users=bench_users(40_000),
            trials=bench_trials(5),
            rng=4,
            cache=bench_cache(),
        )
    )
    show(f"Figure 4 ({dataset}): MGA frequency gain", rows)
    before = column(rows, "fg_before")
    recover = column(rows, "fg_ldprecover")
    star = column(rows, "fg_ldprecover_star")
    assert np.all(before > 0), "MGA must realize a positive gain"
    assert np.all(np.abs(recover) < before / 2), "LDPRecover must suppress the gain"
    assert np.all(np.abs(star) < before / 2), "LDPRecover* must suppress the gain"
