"""Scenario exhibit: key-value recovery sweep (beyond the paper).

Qualitative shape: the targeted key-value attack inflates both the
target keys' frequencies and their means; target-aware recovery
(LDPRecover* + malicious-mass deduction on the value channel) crushes
the frequency gain and strictly improves key-frequency MSE and the
attacked keys' mean error wherever the server's eta=0.2 covers the true
attack strength (beta <= 0.15; at beta=0.2 the deduction is
under-budgeted and the mean channel saturates — visible in the rows).
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, bench_workers, column, show
from repro.sim.scenarios import kv_rows


def test_kv_recovery(run_once):
    rows = run_once(
        lambda: kv_rows(
            num_users=bench_users(60_000),
            trials=bench_trials(3),
            rng=11,
            workers=bench_workers(),
            cache=bench_cache(),
        )
    )
    show("Scenario: key-value recovery (kv)", rows)
    strong = [r for r in rows if 0.05 <= r["beta"] <= 0.15]
    assert strong, "the beta grid must cover the covered-attack regime"
    before = np.array([r["freq_mse_before"] for r in strong])
    star = np.array([r["freq_mse_recover_star"] for r in strong])
    assert np.all(star < before), "target knowledge must improve frequency MSE"
    fg_before = column(rows, "fg_before")
    fg_star = column(rows, "fg_recover_star")
    assert np.all(fg_star < fg_before), "recovery must crush the frequency gain"
    mae_before = np.array([r["target_mean_mae_before"] for r in strong])
    mae_star = np.array([r["target_mean_mae_recover_star"] for r in strong])
    assert np.all(mae_star < mae_before), (
        "the value-channel deduction must improve the attacked keys' means"
    )
    # Poisoning strength grows with beta (per epsilon series).
    for epsilon in sorted({r["epsilon"] for r in rows}):
        series = [r for r in rows if r["epsilon"] == epsilon]
        assert series[-1]["freq_mse_before"] > series[0]["freq_mse_before"]
