"""Table I: MSE of LDPRecover executed on *unpoisoned* frequencies.

Paper shape (the interesting inversion): on GRR the recovery pipeline
improves even clean data (the simplex projection is the 'consistency'
post-processing of Wang et al.); on OUE and OLH, whose clean estimates are
already tight, deducting the learned malicious sum removes genuine mass
and can reduce accuracy.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, show
from repro.sim.figures import table1_rows


def test_table1(run_once):
    rows = run_once(
        lambda: table1_rows(
            num_users=bench_users(None),  # full paper populations by default
            trials=bench_trials(5),
            rng=1,
            cache=bench_cache(),
        )
    )
    show("Table I: LDPRecover on unpoisoned frequencies", rows)
    for row in rows:
        if row["protocol"] == "grr":
            assert row["mse_after_recovery"] < row["mse_before_recovery"], (
                f"GRR should improve on clean data ({row['dataset']})"
            )
    # OUE/OLH must not improve dramatically (the paper reports degradation;
    # we assert the absence of a spurious large win).
    for row in rows:
        if row["protocol"] in ("oue", "olh"):
            assert row["mse_after_recovery"] > 0.05 * row["mse_before_recovery"]
