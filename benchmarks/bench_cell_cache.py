"""Cell-cache throughput: cold simulation vs. warm cache-read regeneration.

The point of :mod:`repro.sim.cache` is report-level throughput: a warm
cache turns figure regeneration into pure JSON reads.  This bench runs the
Figure 5 beta sweep cold (simulating and storing every cell) and then warm
(serving every cell from disk), asserts the warm pass executed zero
simulation tasks and returned identical rows, and records the warm pass's
wall time — the number that should stay flat no matter how large the
populations grow.
"""

from __future__ import annotations

from conftest import bench_trials, bench_users, show
from repro.sim.cache import CellCache
from repro.sim.engine import TASK_COUNTER
from repro.sim.figures import sweep_rows


def test_cell_cache_warm_regeneration(run_once, tmp_path):
    cache = CellCache(tmp_path / "cells")
    kwargs = dict(
        num_users=bench_users(60_000), trials=bench_trials(5), rng=5, cache=cache
    )
    cold = sweep_rows("ipums", "beta", **kwargs)
    assert cache.stats.stores == len(cold)

    TASK_COUNTER.reset()
    warm = run_once(lambda: sweep_rows("ipums", "beta", **kwargs))
    assert TASK_COUNTER.count == 0, "warm regeneration must not simulate"
    assert warm == cold, "cached rows must reproduce the cold run exactly"
    assert cache.stats.hits >= len(cold)
    show("Figure 5 beta sweep, served entirely from the cell cache", warm)
