"""Figure 5: impact of beta / epsilon / eta on recovery from AA (IPUMS).

Paper shape: poisoned MSE grows with beta while recovered MSE stays low;
recovery works across the whole epsilon range; recovery is best when eta
is near beta/(1-beta) but remains effective when eta is much larger.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import sweep_rows


@pytest.mark.parametrize("parameter", ["beta", "epsilon", "eta"])
def test_fig5(parameter, run_once):
    rows = run_once(
        lambda: sweep_rows(
            "ipums",
            parameter,
            num_users=bench_users(60_000),
            trials=bench_trials(5),
            rng=5,
            cache=bench_cache(),
        )
    )
    show(f"Figure 5 (IPUMS): AA sweep over {parameter}", rows)
    before = column(rows, "mse_before")
    recover = column(rows, "mse_ldprecover")
    if parameter == "epsilon":
        # At large epsilon the poisoning bias vanishes into the (tiny)
        # noise floor and recovery becomes a wash (the Table I inversion);
        # require a win in most cells and never a large loss.
        assert np.mean(recover < before) >= 0.8
        assert np.all(recover < 2 * before)
    else:
        assert np.all(recover < before), "recovery must beat poisoned at every point"
    if parameter == "beta":
        grr = [r for r in rows if r["cell"] == "aa-grr"]
        # GRR's poisoned error grows visibly with beta (Fig. 5a).
        assert grr[-1]["mse_before"] > grr[0]["mse_before"]
