"""Ablation: LDPRecover vs generic consistency post-processing, plus the
heavy-hitter repair the targeted attack is really about.

Two extension exhibits beyond the paper's figures:

1. **Consistency comparison** — LDPRecover / LDPRecover* against the
   Norm / Norm-Mul / Norm-Cut / Norm-Sub family (Wang et al. NDSS'20),
   which enforces the same public constraints but knows nothing about
   poisoning.  Expected: LDPRecover* beats every generic method; plain
   LDPRecover matches the best of them (its uniform malicious split is
   designed to cancel under the shared projection).
2. **Top-k repair** — the number of attacker-planted items in the
   estimated top-10 before and after recovery (MGA's stated goal is to
   "promote target items as popular items").
"""

from __future__ import annotations

import numpy as np

from conftest import bench_trials, bench_users, show
from repro._rng import spawn
from repro.attacks import MGAAttack
from repro.core.consistency import CONSISTENCY_METHODS
from repro.core.heavyhitters import heavy_hitter_report
from repro.core.recover import recover_frequencies
from repro.datasets import ipums_like
from repro.protocols import PROTOCOL_NAMES, make_protocol
from repro.sim import mse, run_trial

BETA = 0.05
TOP_K = 10


def consistency_rows(num_users, trials, rng=13):
    dataset = ipums_like(num_users=num_users)
    rows = []
    for protocol_name in PROTOCOL_NAMES:
        protocol = make_protocol(protocol_name, epsilon=0.5, domain_size=dataset.domain_size)
        attack = MGAAttack(domain_size=dataset.domain_size, r=10, rng=0)
        acc: dict[str, list[float]] = {name: [] for name in CONSISTENCY_METHODS}
        plain: list[float] = []
        star: list[float] = []
        for child in spawn(rng, trials):
            trial = run_trial(dataset, protocol, attack, beta=BETA, rng=child)
            truth = trial.true_frequencies
            plain.append(
                mse(truth, recover_frequencies(trial.poisoned_frequencies, protocol).frequencies)
            )
            star.append(
                mse(
                    truth,
                    recover_frequencies(
                        trial.poisoned_frequencies,
                        protocol,
                        target_items=attack.target_items,
                    ).frequencies,
                )
            )
            for name, fn in CONSISTENCY_METHODS.items():
                acc[name].append(mse(truth, fn(trial.poisoned_frequencies)))
        row: dict[str, object] = {
            "protocol": protocol_name,
            "ldprecover": float(np.mean(plain)),
            "ldprecover_star": float(np.mean(star)),
        }
        for name, values in acc.items():
            row[name] = float(np.mean(values))
        rows.append(row)
    return rows


def topk_rows(num_users, trials, rng=14):
    dataset = ipums_like(num_users=num_users)
    tail = np.argsort(dataset.frequencies)[:5]  # promote unpopular items
    rows = []
    for protocol_name in PROTOCOL_NAMES:
        protocol = make_protocol(protocol_name, epsilon=0.5, domain_size=dataset.domain_size)
        attack = MGAAttack(domain_size=dataset.domain_size, targets=tail)
        planted_before: list[int] = []
        planted_after: list[int] = []
        precision_before: list[float] = []
        precision_after: list[float] = []
        for child in spawn(rng, trials):
            trial = run_trial(dataset, protocol, attack, beta=0.1, rng=child)
            recovery = recover_frequencies(
                trial.poisoned_frequencies, protocol, target_items=tail
            )
            report = heavy_hitter_report(
                trial.true_frequencies,
                trial.poisoned_frequencies,
                recovery.frequencies,
                k=TOP_K,
            )
            planted_before.append(report.planted_poisoned)
            planted_after.append(report.planted_recovered)
            precision_before.append(report.precision_poisoned)
            precision_after.append(report.precision_recovered)
        rows.append(
            {
                "protocol": protocol_name,
                "planted_poisoned": float(np.mean(planted_before)),
                "planted_recovered": float(np.mean(planted_after)),
                "topk_precision_poisoned": float(np.mean(precision_before)),
                "topk_precision_recovered": float(np.mean(precision_after)),
            }
        )
    return rows


def test_consistency_comparison(run_once):
    rows = run_once(lambda: consistency_rows(bench_users(60_000), bench_trials(5)))
    show("Ablation: LDPRecover vs consistency methods (MGA, IPUMS)", rows)
    for row in rows:
        generics = [row[name] for name in CONSISTENCY_METHODS]
        if row["protocol"] in ("grr", "oue"):
            # Single-item-support crafting matches Eq. 30's model exactly:
            # the targeted deduction beats every generic method.
            assert row["ldprecover_star"] < min(generics), (
                f"{row['protocol']}: LDPRecover* must beat every generic method"
            )
        else:
            # OLH crafted reports support many targets at once, weakening
            # Eq. 30's single-support assumption — the paper's own Fig. 3
            # shows LDPRecover* ~ LDPRecover there.  Require parity.
            assert row["ldprecover_star"] <= 3 * min(generics)
        assert row["ldprecover"] <= 2 * min(generics)


def test_topk_repair(run_once):
    rows = run_once(lambda: topk_rows(bench_users(60_000), bench_trials(5)))
    show("Extension: top-10 repair under MGA promotion (IPUMS)", rows)
    for row in rows:
        assert row["planted_poisoned"] >= 1, "MGA should plant items into the top-10"
    # Top-10 membership is a hard threshold: a residual sliver of gain can
    # keep a planted tail item above the genuine tail, so require the
    # repair in aggregate and strictly for the single-support protocols.
    total_before = sum(row["planted_poisoned"] for row in rows)
    total_after = sum(row["planted_recovered"] for row in rows)
    assert total_after < total_before
    for row in rows:
        if row["protocol"] in ("grr", "oue"):
            assert row["topk_precision_recovered"] > row["topk_precision_poisoned"]
