"""Ablation: contribution of each constraint in the CI problem.

DESIGN.md section 6 calls out the design choices behind LDPRecover's
constraint-inference formulation.  This bench removes one ingredient at a
time and measures the recovery MSE under AA poisoning:

* ``full``            — LDPRecover as specified (Algorithm 1);
* ``no-learned-sum``  — drop the Eq. 21/26 malicious estimate (f_Y = 0),
  keeping the estimator scaling and projection;
* ``projection-only`` — eta = 0: no estimator at all, just the simplex
  projection (the 'consistency' baseline);
* ``no-split``        — spread the learned sum over the whole domain
  instead of the D1 sub-domain;
* ``no-projection``   — the raw Eq. 27 estimate without the non-negativity
  / sum-to-one refinement.

Expected shape: ``full`` is at or near the best; ``no-projection`` is the
worst (the refinement carries a large share of the win); the D0/D1 split
and the learned sum each matter more for GRR than for OUE/OLH.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_trials, bench_users, show
from repro._rng import spawn
from repro.attacks import AdaptiveAttack
from repro.core.estimator import genuine_frequency_estimate
from repro.core.malicious import learned_malicious_sum, uniform_malicious_estimate
from repro.core.projection import project_onto_simplex_kkt
from repro.core.recover import recover_frequencies
from repro.datasets import ipums_like
from repro.protocols import PROTOCOL_NAMES, make_protocol
from repro.sim import mse, run_trial

ETA = 0.2
BETA = 0.05


def _variants(poisoned: np.ndarray, protocol) -> dict[str, np.ndarray]:
    params = protocol.params
    full = recover_frequencies(poisoned, protocol, eta=ETA).frequencies
    no_sum = project_onto_simplex_kkt(
        genuine_frequency_estimate(poisoned, np.zeros_like(poisoned), ETA)
    )
    projection_only = project_onto_simplex_kkt(poisoned)
    spread_everywhere = np.full_like(
        poisoned, learned_malicious_sum(params) / poisoned.size
    )
    no_split = project_onto_simplex_kkt(
        genuine_frequency_estimate(poisoned, spread_everywhere, ETA)
    )
    no_projection = genuine_frequency_estimate(
        poisoned, uniform_malicious_estimate(poisoned, params), ETA
    )
    return {
        "full": full,
        "no-learned-sum": no_sum,
        "projection-only": projection_only,
        "no-split": no_split,
        "no-projection": no_projection,
    }


def compute_rows(num_users, trials, rng=11):
    dataset = ipums_like(num_users=num_users)
    rows = []
    for protocol_name in PROTOCOL_NAMES:
        protocol = make_protocol(protocol_name, epsilon=0.5, domain_size=dataset.domain_size)
        sums: dict[str, list[float]] = {}
        before: list[float] = []
        for trial_rng in spawn(rng, trials):
            attack = AdaptiveAttack(domain_size=dataset.domain_size, rng=trial_rng)
            trial = run_trial(dataset, protocol, attack, beta=BETA, rng=trial_rng)
            before.append(mse(trial.true_frequencies, trial.poisoned_frequencies))
            for name, freq in _variants(trial.poisoned_frequencies, protocol).items():
                sums.setdefault(name, []).append(mse(trial.true_frequencies, freq))
        row: dict[str, object] = {"protocol": protocol_name, "mse_before": float(np.mean(before))}
        for name, values in sums.items():
            row[name] = float(np.mean(values))
        rows.append(row)
    return rows


def test_ablation_constraints(run_once):
    rows = run_once(
        lambda: compute_rows(bench_users(60_000), bench_trials(5))
    )
    show("Ablation: CI constraints (AA, IPUMS, beta=0.05)", rows)
    for row in rows:
        assert row["full"] < row["mse_before"], "full recovery must help"
        # The projection carries a large share of the win: removing it is
        # never better than keeping it.
        assert row["full"] <= row["no-projection"] * 1.05
