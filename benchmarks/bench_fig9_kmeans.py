"""Figure 9: LDPRecover-KM vs plain k-means under MGA-IPA (IPUMS).

Paper shape: integrating the k-means cluster statistics into LDPRecover
(LDPRecover-KM) recovers more accurately than the k-means defense alone —
the paper reports a 48.9% improvement for GRR.
"""

from __future__ import annotations

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import figure9_rows


def test_fig9(run_once):
    rows = run_once(
        lambda: figure9_rows(
            num_users=bench_users(20_000),
            trials=bench_trials(3),
            rng=9,
            cache=bench_cache(),
        )
    )
    show("Figure 9 (IPUMS): LDPRecover-KM vs k-means under MGA-IPA", rows)
    km_only = column(rows, "mse_kmeans")
    km_recover = column(rows, "mse_ldprecover_km")
    assert km_recover.mean() < km_only.mean(), "LDPRecover-KM must beat plain k-means"
    # The paper's headline: ~50% improvement; we require at least 30%.
    assert km_recover.mean() < 0.7 * km_only.mean()
