"""Figure 8: MGA vs MGA-IPA poisoning strength (IPUMS, no recovery).

Paper shape: the general (output) poisoning attack is orders of magnitude
stronger than the input poisoning variant — e.g. for GRR the paper reports
MGA at 6.07e-2..1.08 vs MGA-IPA at ~5e-4, a 2-4 order gap.
"""

from __future__ import annotations

import numpy as np

from conftest import bench_cache, bench_trials, bench_users, column, show
from repro.sim.figures import figure8_rows


def test_fig8(run_once):
    rows = run_once(
        lambda: figure8_rows(
            num_users=bench_users(60_000),
            trials=bench_trials(5),
            rng=8,
            cache=bench_cache(),
        )
    )
    show("Figure 8 (IPUMS): MGA vs MGA-IPA", rows)
    mga = column(rows, "mse_mga")
    ipa = column(rows, "mse_mga_ipa")
    assert np.all(ipa < mga), "IPA must be weaker at every beta"
    assert (mga / ipa).max() > 10, "the gap must reach an order of magnitude"
    grr = [r for r in rows if r["cell"] == "grr"]
    assert grr[-1]["mse_mga"] > grr[0]["mse_mga"], "MGA grows with beta"
